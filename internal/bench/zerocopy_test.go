package bench

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	"godavix/internal/core"
	"godavix/internal/obs"
)

// zcTestSize keeps the harness tests fast; the 128 MiB runs live in
// cmd/davix-bench. 16 MiB is still two 8 MiB chunks, so the scatter path
// and the per-chunk kernel handoff are both exercised.
const zcTestSize = int64(16) << 20

// TestZerocopyKernelPathFires is the one test in the repo that proves the
// kernel byte path actually runs: over real loopback TCP into an *os.File,
// the splice path must move payload bytes that never touch userspace. (A
// few bytes per chunk arrive through the response reader's buffered prefix
// and are correctly classified pooled — the assertion is that the kernel
// path dominates, not that it is exclusive.)
func TestZerocopyKernelPathFires(t *testing.T) {
	s, _, m, err := zcDownload(zcKernel, zcTestSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 1 {
		t.Fatalf("samples = %d", s.N())
	}
	if m.KernelBytesDown == 0 {
		t.Fatal("kernel path never fired over real loopback TCP")
	}
	if m.KernelBytesDown < m.PooledBytesDown {
		t.Fatalf("kernel path did not dominate: %d kernel vs %d pooled",
			m.KernelBytesDown, m.PooledBytesDown)
	}
	// Warm-up + 1 measured op: every payload byte classified exactly once.
	if got := m.KernelBytesDown + m.PooledBytesDown; got != 2*zcTestSize {
		t.Fatalf("byte-path counters = %d, want %d", got, 2*zcTestSize)
	}
}

// TestZerocopyUploadSendfile is the upload mirror: a file-backed PutReader
// body on a plain TCP connection must ride the sendfile path, and turning
// verification on must force the same bytes through the digest tee onto
// the pooled path instead.
func TestZerocopyUploadSendfile(t *testing.T) {
	_, _, m, err := zcUpload(false, zcTestSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelBytesUp == 0 {
		t.Fatal("sendfile path never fired over real loopback TCP")
	}
	if m.PooledBytesUp != 0 {
		t.Fatalf("PooledBytesUp = %d, want 0 with verification off", m.PooledBytesUp)
	}

	_, _, m, err = zcUpload(true, zcTestSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.KernelBytesUp != 0 {
		t.Fatalf("KernelBytesUp = %d, want 0: the digest tee must force pooled", m.KernelBytesUp)
	}
	if m.PooledBytesUp != 2*zcTestSize {
		t.Fatalf("PooledBytesUp = %d, want %d", m.PooledBytesUp, 2*zcTestSize)
	}
	if m.TransfersVerified != 2 {
		t.Fatalf("TransfersVerified = %d, want 2 (warm-up + measured)", m.TransfersVerified)
	}
}

// TestZerocopyDownloadContent checks the kernel path delivers the right
// bytes, not just fast ones: chunks spliced into the file at their offsets
// must reassemble the exact object.
func TestZerocopyDownloadContent(t *testing.T) {
	env, err := newZCEnv()
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	blob := make([]byte, zcTestSize)
	rand.New(rand.NewSource(63)).Read(blob)
	if err := env.store.Put(zcPath, blob); err != nil {
		t.Fatal(err)
	}
	client, err := env.newClient(core.Options{
		Strategy: core.StrategyNone, ChunkSize: 1 << 20, MaxStreams: zcStreams,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f, err := os.CreateTemp(t.TempDir(), "zc-content-*.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := client.DownloadMultiStreamTo(context.Background(), env.addr, zcPath, f)
	if err != nil || n != zcTestSize {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("kernel-path download content mismatch")
	}
}

// TestZerocopyByteAccountingReconciles is the regression guard against the
// PR-6 class of bug (wire bytes double-counted when observers were
// active): with trace hooks installed AND inline verification on, one
// verified download must classify every payload byte exactly once in the
// byte-path counters, report the same total through the TransferPath trace
// events, and keep the wire-byte counter within one header's width of the
// payload — any double charge fails all three.
func TestZerocopyByteAccountingReconciles(t *testing.T) {
	env, err := newZCEnv()
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	blob := make([]byte, zcTestSize)
	rand.New(rand.NewSource(64)).Read(blob)
	if err := env.store.Put(zcPath, blob); err != nil {
		t.Fatal(err)
	}

	var traced, chunks atomic.Int64
	client, err := env.newClient(core.Options{
		Strategy:        core.StrategyNone,
		ChunkSize:       1 << 20,
		MaxStreams:      zcStreams,
		VerifyTransfers: true,
		Trace: &obs.ClientTrace{
			TransferPath: func(dir obs.Direction, path string, bp obs.BytePath, n int64) {
				if dir == obs.Down {
					traced.Add(n)
				}
			},
			ChunkDone: func(dir obs.Direction, path string, idx int, off, length int64, err error) {
				if err == nil {
					chunks.Add(length)
				}
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f, err := os.CreateTemp(t.TempDir(), "zc-recon-*.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := client.DownloadMultiStreamTo(context.Background(), env.addr, zcPath, f)
	if err != nil || n != zcTestSize {
		t.Fatalf("n=%d err=%v", n, err)
	}

	m := client.Metrics()
	if got := m.KernelBytesDown + m.PooledBytesDown; got != zcTestSize {
		t.Fatalf("byte-path counters = %d, want %d (payload classified other than exactly once)",
			got, zcTestSize)
	}
	if traced.Load() != zcTestSize {
		t.Fatalf("TransferPath events total %d, want %d", traced.Load(), zcTestSize)
	}
	if chunks.Load() != zcTestSize {
		t.Fatalf("ChunkDone lengths total %d, want %d", chunks.Load(), zcTestSize)
	}
	if m.TransfersVerified != 1 {
		t.Fatalf("TransfersVerified = %d, want 1", m.TransfersVerified)
	}
	// Wire bytes: at least the payload, at most payload + response heads.
	// A double-counted body would blow far past this ceiling.
	const headroom = 64 << 10
	if m.BytesDown < zcTestSize {
		t.Fatalf("BytesDown = %d undercounts the %d-byte payload", m.BytesDown, zcTestSize)
	}
	if m.BytesDown > zcTestSize+headroom {
		t.Fatalf("BytesDown = %d, payload is %d: wire bytes double-counted", m.BytesDown, zcTestSize)
	}
}

// TestZerocopyTableRuns exercises the full experiment end to end at tiny
// scale: every row present, the verification column proving the digest
// rows verified and the kernel/legacy rows did not.
func TestZerocopyTableRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	old := zcBenchSize
	zcBenchSize = zcTestSize
	defer func() { zcBenchSize = old }()
	table, err := Zerocopy(Options{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(table.Rows))
	}
	// Row layout: 4 download modes then 2 upload modes; "verified" is last.
	verified := func(i int) string { return table.Rows[i][len(table.Rows[i])-1] }
	if verified(2) == "0" {
		t.Fatal("pooled+digest download row did not verify")
	}
	if verified(0) != "0" || verified(3) != "0" {
		t.Fatalf("legacy/kernel rows claim verification: %q %q", verified(0), verified(3))
	}
	if verified(5) == "0" {
		t.Fatal("teed+digest upload row did not verify")
	}
	var buf bytes.Buffer
	table.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("kernel splice")) {
		t.Fatalf("render missing kernel row:\n%s", buf.String())
	}
}
