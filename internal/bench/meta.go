package bench

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"strings"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/pool"
	"godavix/internal/webdav"
)

// meta-benchmark geometry: a deep synthetic catalog (the paper's HPC
// namespace workload) wide enough that the serial walk's one-PROPFIND-per-
// directory round trips dominate, plus a single flat 10k-entry collection
// for the decoder ablation.
const (
	metaDepth    = 3 // directory levels below the root
	metaDirsPer  = 4 // subdirectories per directory: 1+4+16+64 = 85 dirs
	metaFilesPer = 3 // files per directory
	metaConns    = 8 // MaxPerHost = WalkParallelism for the parallel client
	metaRoot     = "/catalog"
	metaFlatN    = 10000 // entries in the decoder-ablation collection
)

// buildMetaTree installs the deep synthetic namespace on the env's store
// and returns the total entry count including the root.
func buildMetaTree(env *Env) (int, error) {
	n := 1
	var grow func(prefix string, depth int) error
	grow = func(prefix string, depth int) error {
		for i := 0; i < metaFilesPer; i++ {
			if err := env.Store.Put(fmt.Sprintf("%s/f%02d.rnt", prefix, i), []byte("x")); err != nil {
				return err
			}
			n++
		}
		if depth == 0 {
			return nil
		}
		for i := 0; i < metaDirsPer; i++ {
			sub := fmt.Sprintf("%s/d%02d", prefix, i)
			if err := env.Store.Mkdir(sub); err != nil {
				return err
			}
			n++
			if err := grow(sub, depth-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := env.Store.Mkdir(metaRoot); err != nil {
		return 0, err
	}
	return n, grow(metaRoot, metaDepth)
}

// runMetaWalk times `repeats` full walks of the deep tree with the given
// WalkParallelism on a fresh testbed, after one untimed warm-up walk that
// pays the dials and slow start. It returns the timing sample and the
// emission order of the last walk (one path per line) so callers can
// assert order identity across parallelism levels.
func runMetaWalk(prof netsim.Profile, parallelism, repeats int) (*Sample, string, error) {
	env, err := NewEnv(prof, httpserv.Options{})
	if err != nil {
		return nil, "", err
	}
	defer env.Close()
	if _, err := buildMetaTree(env); err != nil {
		return nil, "", err
	}
	client, err := env.NewHTTPClient(core.Options{
		Strategy:        core.StrategyNone,
		WalkParallelism: parallelism,
		Pool:            pool.Options{MaxPerHost: metaConns},
	})
	if err != nil {
		return nil, "", err
	}
	defer client.Close()

	ctx := context.Background()
	var order strings.Builder
	walk := func(record bool) error {
		order.Reset()
		return client.Walk(ctx, HTTPAddr, metaRoot, func(inf core.Info) error {
			if record {
				order.WriteString(inf.Path)
				order.WriteByte('\n')
			}
			return nil
		})
	}
	if err := walk(false); err != nil {
		return nil, "", err
	}
	s := &Sample{}
	for rep := 0; rep < repeats; rep++ {
		timer := startTimer()
		if err := walk(rep == repeats-1); err != nil {
			return nil, "", err
		}
		s.AddDuration(timer())
	}
	return s, order.String(), nil
}

// metaPropfindResponse renders the canned 207 multistatus a server would
// send for a flat n-entry collection as one replayable byte blob.
func metaPropfindResponse(n int) ([]byte, error) {
	entries := make([]webdav.Entry, 0, n+1)
	entries = append(entries, webdav.Entry{Href: "/flat", Dir: true})
	for i := 0; i < n; i++ {
		entries = append(entries, webdav.Entry{Href: fmt.Sprintf("/flat/f%05d.rnt", i), Size: int64(i)})
	}
	body, err := webdav.EncodeMultistatus(entries)
	if err != nil {
		return nil, err
	}
	head := fmt.Sprintf("HTTP/1.1 207 Multi-Status\r\n"+
		"Content-Type: %s\r\n"+
		"Content-Length: %d\r\n\r\n", webdav.ContentType, len(body))
	return append([]byte(head), body...), nil
}

// metaDecodeAllocs measures client-side allocations per List of a 10k-entry
// collection against a canned-response replay connection. streaming=true is
// the PR-3 path (xml token loop straight off the wire); streaming=false
// reproduces the seed behaviour (body materialized, then xml.Unmarshal).
func metaDecodeAllocs(streaming bool, repeats int) (float64, error) {
	resp, err := metaPropfindResponse(metaFlatN)
	if err != nil {
		return 0, err
	}
	client, err := core.NewClient(core.Options{
		Dialer: pool.DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
			return &replayConn{resp: resp}, nil
		}),
		Strategy:             core.StrategyNone,
		LegacyPropfindDecode: !streaming,
	})
	if err != nil {
		return 0, err
	}
	defer client.Close()

	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm the conn and the pools
		if _, err := client.List(ctx, "replay:80", "/flat"); err != nil {
			return 0, err
		}
	}
	if repeats <= 0 {
		repeats = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < repeats; i++ {
		if _, err := client.List(ctx, "replay:80", "/flat"); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(repeats), nil
}

// Meta measures the PR-3 parallel namespace engine: serial versus
// concurrent deep-tree walks on the LAN and WAN profiles, plus the
// streaming-versus-materialized multistatus decoder ablation. Not in the
// paper — the paper's davix walks catalogs serially; this quantifies what
// the §2.2 dynamic pool buys when the metadata path is allowed to use all
// of it at once. Order identity between the serial and parallel walks is
// asserted, not assumed.
func Meta(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	nDirs := 0
	for d, w := 0, 1; d <= metaDepth; d++ {
		nDirs += w
		w *= metaDirsPer
	}
	table := &Table{
		Title: "Parallel namespace walk: serial vs concurrent PROPFIND, streaming vs seed decode",
		Columns: []string{"link", "serial walk", fmt.Sprintf("parallel(%d conns)", metaConns),
			"speedup", "allocs/op streaming", "allocs/op seed"},
		Notes: []string{
			fmt.Sprintf("tree: %d collections x %d files (depth %d); decode ablation: one %d-entry collection",
				nDirs, metaFilesPer, metaDepth, metaFlatN),
			"warm connections (one untimed walk first); allocs measured client-side on a canned-response replay conn",
			"parallel emission order verified byte-identical to the serial walk",
		},
	}

	streamingAllocs, err := metaDecodeAllocs(true, opts.Repeats*2)
	if err != nil {
		return nil, err
	}
	seedAllocs, err := metaDecodeAllocs(false, opts.Repeats*2)
	if err != nil {
		return nil, err
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		serial, serialOrder, err := runMetaWalk(prof, 1, opts.Repeats)
		if err != nil {
			return nil, err
		}
		parallel, parallelOrder, err := runMetaWalk(prof, metaConns, opts.Repeats)
		if err != nil {
			return nil, err
		}
		if serialOrder != parallelOrder {
			return nil, fmt.Errorf("bench: %s parallel walk order diverged from serial", prof.Name)
		}
		table.AddRow(
			prof.Name,
			formatDur(serial),
			formatDur(parallel),
			fmt.Sprintf("%.2fx", serial.Mean()/parallel.Mean()),
			fmt.Sprintf("%.0f", streamingAllocs),
			fmt.Sprintf("%.0f", seedAllocs),
		)
	}
	return table, nil
}
