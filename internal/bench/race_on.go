//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this build;
// timing-bar tests skip themselves, since instrumentation overhead swamps
// the simulated network delays for memory-heavy workloads.
const raceEnabled = true
