package bench

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/metalink"
	"godavix/internal/netsim"
	"godavix/internal/pool"
)

// xfer-benchmark geometry: a transfer large enough that per-connection
// bandwidth dominates, split into enough chunks that the parallel upload
// can keep every pooled connection busy.
const (
	xferSize    = 16 << 20 // 16 MiB object
	xferChunk   = 1 << 20  // 1 MiB chunks -> 16 chunks
	xferConns   = 16       // MaxPerHost = UploadParallelism: every chunk gets a stream
	xferPath    = "/store/xfer.dat"
	xferAllocMB = 8 // MiB moved per op in the allocation ablations
)

// runXferUpload times `repeats` uploads of a 16 MiB object with the given
// UploadParallelism on a fresh testbed, after one untimed warm-up that
// pays the dials and slow start. parallelism 1 measures the seed's Put —
// the single-stream upload the paper ships (and the serial
// UploadMultiStream path is wire-identical to it, asserted by test).
func runXferUpload(prof netsim.Profile, parallelism, repeats int) (*Sample, error) {
	env, err := NewEnv(prof, httpserv.Options{})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	client, err := env.NewHTTPClient(core.Options{
		Strategy:          core.StrategyNone,
		ChunkSize:         xferChunk,
		UploadParallelism: parallelism,
		Pool:              pool.Options{MaxPerHost: xferConns},
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()

	blob := make([]byte, xferSize)
	rand.New(rand.NewSource(51)).Read(blob)
	ctx := context.Background()

	upload := func() error {
		if parallelism == 1 {
			return client.Put(ctx, HTTPAddr, xferPath, blob)
		}
		return client.UploadMultiStream(ctx, HTTPAddr, xferPath, bytes.NewReader(blob), xferSize)
	}
	if err := upload(); err != nil {
		return nil, err
	}
	s := &Sample{}
	for rep := 0; rep < repeats; rep++ {
		timer := startTimer()
		if err := upload(); err != nil {
			return nil, err
		}
		s.AddDuration(timer())
	}
	return s, nil
}

// patternReader yields n deterministic bytes without holding them: the
// streaming source whose upload must stay O(chunk) in allocations.
type patternReader struct{ remaining int64 }

func (r *patternReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remaining {
		n = int(r.remaining)
	}
	for i := 0; i < n; i++ {
		p[i] = byte(i)
	}
	r.remaining -= int64(n)
	return n, nil
}

// putAllocBytes measures client-side bytes allocated per 8 MiB upload
// against a canned-response replay connection. streaming=true drives
// PutReader (Expect: 100-continue, body copied through a small buffer);
// streaming=false reproduces the seed workflow — materialize the source
// into one []byte, then Put it.
func putAllocBytes(streaming bool, repeats int) (float64, error) {
	canned := "HTTP/1.1 201 Created\r\nContent-Length: 0\r\n\r\n"
	if streaming {
		canned = "HTTP/1.1 100 Continue\r\n\r\n" + canned
	}
	client, err := core.NewClient(core.Options{
		Dialer: pool.DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
			return &replayConn{resp: []byte(canned)}, nil
		}),
		Strategy: core.StrategyNone,
	})
	if err != nil {
		return 0, err
	}
	defer client.Close()

	const size = int64(xferAllocMB) << 20
	ctx := context.Background()
	op := func() error {
		if streaming {
			return client.PutReader(ctx, "replay:80", "/up", &patternReader{remaining: size}, size)
		}
		buf := make([]byte, size)
		if _, err := io.ReadFull(&patternReader{remaining: size}, buf); err != nil {
			return err
		}
		return client.Put(ctx, "replay:80", "/up", buf)
	}
	for i := 0; i < 2; i++ { // warm the conn and the pools
		if err := op(); err != nil {
			return 0, err
		}
	}
	if repeats <= 0 {
		repeats = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < repeats; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(repeats), nil
}

// sinkWriterAt is a reusable io.WriterAt destination (an in-memory stand-in
// for an os.File) tolerating concurrent disjoint writes.
type sinkWriterAt struct {
	mu sync.Mutex
	b  []byte
}

func (w *sinkWriterAt) WriteAt(p []byte, off int64) (int, error) {
	w.mu.Lock()
	copy(w.b[off:], p)
	w.mu.Unlock()
	return len(p), nil
}

// downloadAllocBytes measures bytes allocated per 8 MiB multi-stream
// download on an ideal in-process testbed. writerAt=true streams chunks
// through pooled buffers into a reusable WriterAt (DownloadMultiStreamTo);
// writerAt=false is DownloadMultiStream, which assembles a fresh []byte
// per call. The in-process server's allocations are counted too, but they
// are identical on both sides — the delta is the client's O(file) output
// buffer.
func downloadAllocBytes(writerAt bool, repeats int) (float64, error) {
	env, err := NewEnv(netsim.Ideal(), httpserv.Options{
		Metalinks: func(p string) *metalink.Metalink {
			return &metalink.Metalink{
				Name: "xfer", Size: int64(xferAllocMB) << 20,
				URLs: []metalink.URL{{Loc: "http://" + HTTPAddr + p, Priority: 1}},
			}
		},
	})
	if err != nil {
		return 0, err
	}
	defer env.Close()
	blob := make([]byte, xferAllocMB<<20)
	rand.New(rand.NewSource(52)).Read(blob)
	if err := env.Store.Put(xferPath, blob); err != nil {
		return 0, err
	}
	client, err := env.NewHTTPClient(core.Options{
		ChunkSize: xferChunk,
		Pool:      pool.Options{MaxPerHost: xferConns},
	})
	if err != nil {
		return 0, err
	}
	defer client.Close()

	ctx := context.Background()
	sink := &sinkWriterAt{b: make([]byte, len(blob))}
	op := func() error {
		if writerAt {
			_, err := client.DownloadMultiStreamTo(ctx, HTTPAddr, xferPath, sink)
			return err
		}
		_, err := client.DownloadMultiStream(ctx, HTTPAddr, xferPath)
		return err
	}
	for i := 0; i < 2; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	if repeats <= 0 {
		repeats = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < repeats; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.TotalAlloc-m0.TotalAlloc) / float64(repeats), nil
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", b)
	}
}

// Xfer measures the PR-4 parallel transfer engine: the seed's serial
// single-stream Put versus the multi-stream Content-Range upload on the
// LAN and WAN profiles, plus the zero-materialization ablations — what
// PutReader saves over materialize-then-Put and what DownloadMultiStreamTo
// saves over assembling a []byte. Not in the paper — the paper's davix
// uploads on one stream; this quantifies what the §2.2 dynamic pool buys
// when the write path is allowed to use all of it at once.
func Xfer(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title: "Parallel transfers: serial vs multi-stream upload, zero-materialization ablations",
		Columns: []string{"link", "serial Put", fmt.Sprintf("multi-stream(%d conns)", xferConns),
			"speedup"},
	}

	putStream, err := putAllocBytes(true, opts.Repeats*2)
	if err != nil {
		return nil, err
	}
	putSeed, err := putAllocBytes(false, opts.Repeats*2)
	if err != nil {
		return nil, err
	}
	dlTo, err := downloadAllocBytes(true, opts.Repeats)
	if err != nil {
		return nil, err
	}
	dlBuf, err := downloadAllocBytes(false, opts.Repeats)
	if err != nil {
		return nil, err
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		serial, err := runXferUpload(prof, 1, opts.Repeats)
		if err != nil {
			return nil, err
		}
		parallel, err := runXferUpload(prof, xferConns, opts.Repeats)
		if err != nil {
			return nil, err
		}
		table.AddRow(
			prof.Name,
			formatDur(serial),
			formatDur(parallel),
			fmt.Sprintf("%.2fx", serial.Mean()/parallel.Mean()),
		)
	}
	table.Notes = []string{
		fmt.Sprintf("upload: %d MiB object, %d MiB Content-Range chunks, warm connections (one untimed upload first)",
			xferSize>>20, xferChunk>>20),
		fmt.Sprintf("PutReader allocs per %d MiB upload: %s streaming vs %s materialize-then-Put (replay conn)",
			xferAllocMB, fmtBytes(putStream), fmtBytes(putSeed)),
		fmt.Sprintf("download allocs per %d MiB: %s to io.WriterAt vs %s assembling []byte (delta = the O(file) output buffer; rest is the in-process server+fabric, identical on both sides)",
			xferAllocMB, fmtBytes(dlTo), fmtBytes(dlBuf)),
		"serial upload path verified byte-identical on the wire to the seed PUT",
	}
	return table, nil
}
