package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"godavix/internal/core"
	"godavix/internal/fed"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/storage"
)

// fedEnv is the §2.4 testbed: M replica servers plus a federation
// front-end generating Metalinks, all on one fabric.
type fedEnv struct {
	net      *netsim.Network
	replicas []string
	fed      *fed.Federation
	closers  []func()
}

func newFedEnv(prof netsim.Profile, nReplicas int, blob []byte, path string) (*fedEnv, error) {
	e := &fedEnv{net: netsim.New(prof)}
	var endpoints []fed.Endpoint
	for i := 0; i < nReplicas; i++ {
		addr := fmt.Sprintf("dpm%d:80", i+1)
		st := storage.NewMemStore()
		st.Put(path, blob)
		srv := httpserv.New(st, httpserv.Options{})
		l, err := e.net.Listen(addr)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.closers = append(e.closers, func() { l.Close() })
		go srv.Serve(l)
		e.replicas = append(e.replicas, addr)
		endpoints = append(endpoints, fed.Endpoint{Host: addr, Priority: i + 1})
	}

	probe, err := core.NewClient(core.Options{Dialer: e.net, Strategy: core.StrategyNone})
	if err != nil {
		e.Close()
		return nil, err
	}
	e.closers = append(e.closers, probe.Close)
	e.fed = fed.New(probe, endpoints, fed.Options{HealthTTL: 10 * time.Millisecond, ProbeTimeout: 500 * time.Millisecond})

	fedSrv := httpserv.New(storage.NewMemStore(), httpserv.Options{Metalinks: e.fed.MetalinkFor})
	fl, err := e.net.Listen(FedAddr)
	if err != nil {
		e.Close()
		return nil, err
	}
	e.closers = append(e.closers, func() { fl.Close() })
	go fedSrv.Serve(fl)
	return e, nil
}

func (e *fedEnv) Close() {
	for i := len(e.closers) - 1; i >= 0; i-- {
		e.closers[i]()
	}
	e.closers = nil
}

// Failover reproduces the §2.4 resilience claims: with M replicas behind a
// federation, a davix read succeeds as long as at least one replica lives,
// and a healthy primary pays zero overhead. Rows: k dead replicas →
// success + read latency.
func Failover(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		nReplicas = 3
		blobSize  = 256 << 10
		path      = "/store/f"
	)
	table := &Table{
		Title:   "§2.4: Metalink fail-over — read success and latency vs dead replicas",
		Columns: []string{"dead replicas", "read ok", "latency", "note"},
		Notes:   []string{fmt.Sprintf("%d replicas of a %d KiB object behind a DynaFed-style federation, PAN link", nReplicas, blobSize>>10)},
	}
	blob := make([]byte, blobSize)
	rand.New(rand.NewSource(17)).Read(blob)

	for dead := 0; dead <= nReplicas; dead++ {
		env, err := newFedEnv(netsim.PAN(), nReplicas, blob, path)
		if err != nil {
			return nil, err
		}
		for i := 0; i < dead; i++ {
			env.net.SetDown(env.replicas[i], true)
		}
		time.Sleep(15 * time.Millisecond) // health cache refresh window

		client, err := core.NewClient(core.Options{
			Dialer:       env.net,
			Strategy:     core.StrategyFailover,
			MetalinkHost: FedAddr,
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		ctx := context.Background()

		s := &Sample{}
		ok := true
		var lastErr error
		for rep := 0; rep < opts.Repeats; rep++ {
			timer := startTimer()
			f, err := client.Open(ctx, env.replicas[0], path)
			if err == nil {
				buf := make([]byte, 4096)
				_, err = f.ReadAt(buf, int64(rep)*4096)
			}
			if err != nil {
				ok = false
				lastErr = err
				break
			}
			s.AddDuration(timer())
		}
		note := ""
		switch {
		case !ok && dead == nReplicas:
			note = "expected: no replica left"
		case !ok:
			note = fmt.Sprintf("UNEXPECTED failure: %v", lastErr)
		case dead == 0:
			note = "healthy primary: no metalink traffic"
		default:
			note = "transparent failover"
		}
		lat := "-"
		if ok {
			lat = Millis(s)
		}
		table.AddRow(fmt.Sprint(dead), fmt.Sprint(ok), lat, note)
		client.Close()
		env.Close()
	}
	return table, nil
}

// MultiStream compares the §2.4 multi-stream strategy against a plain
// single-source download for a larger object, and demonstrates the load
// spreading across replicas.
func MultiStream(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		nReplicas = 3
		blobSize  = 8 << 20
		path      = "/store/big"
	)
	table := &Table{
		Title:   "§2.4: multi-stream download vs single stream",
		Columns: []string{"mode", "time", "throughput"},
		Notes:   []string{fmt.Sprintf("%d MiB object, %d replicas, PAN link", blobSize>>20, nReplicas)},
	}
	blob := make([]byte, blobSize)
	rand.New(rand.NewSource(23)).Read(blob)

	single, multi := &Sample{}, &Sample{}
	for rep := 0; rep < opts.Repeats; rep++ {
		env, err := newFedEnv(netsim.PAN(), nReplicas, blob, path)
		if err != nil {
			return nil, err
		}
		client, err := core.NewClient(core.Options{
			Dialer:       env.net,
			Strategy:     core.StrategyMultiStream,
			MetalinkHost: FedAddr,
			ChunkSize:    1 << 20,
			MaxStreams:   nReplicas,
		})
		if err != nil {
			env.Close()
			return nil, err
		}
		ctx := context.Background()

		timer := startTimer()
		data, err := client.Get(ctx, env.replicas[0], path)
		if err != nil || len(data) != blobSize {
			client.Close()
			env.Close()
			return nil, fmt.Errorf("single stream: %v (%d bytes)", err, len(data))
		}
		single.AddDuration(timer())

		timer = startTimer()
		data, err = client.DownloadMultiStream(ctx, env.replicas[0], path)
		if err != nil || len(data) != blobSize {
			client.Close()
			env.Close()
			return nil, fmt.Errorf("multi stream: %v (%d bytes)", err, len(data))
		}
		multi.AddDuration(timer())

		client.Close()
		env.Close()
	}
	tput := func(s *Sample) string {
		return fmt.Sprintf("%.1f MiB/s", float64(blobSize)/(1<<20)/s.Mean())
	}
	table.AddRow("single stream", Seconds(single), tput(single))
	table.AddRow("multi-stream ×3", Seconds(multi), tput(multi))
	return table, nil
}
