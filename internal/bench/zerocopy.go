package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"runtime"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/pool"
	"godavix/internal/storage"
)

// zerocopy-benchmark geometry: a transfer big enough that the per-byte
// cost (copies, digest arithmetic, allocation churn) dominates the
// per-chunk protocol overhead. The paper's workload is 1 GiB-class
// replicas; CI scales that to 128 MiB, which is still 16 chunks of 8 MiB —
// each one past the 4 MiB bufpool ceiling, so the legacy chunk-materialize
// path pays a fresh allocation per chunk exactly as it would at full size.
const (
	zcSize    = int64(128) << 20 // 128 MiB object
	zcChunk   = 8 << 20          // 8 MiB chunks -> 16 chunks
	zcStreams = 4
	zcPath    = "/store/zerocopy.dat"
)

// zcBenchSize is the object size the Zerocopy experiment moves; a var so
// the harness test can run the full table at tiny scale.
var zcBenchSize = zcSize

// zcEnv is the zerocopy testbed. Unlike every other experiment it runs
// over REAL loopback TCP, not the netsim fabric: the kernel
// sendfile/splice path needs file descriptors on both ends, and netsim
// pipes are not syscall.Conn, so the fast path can never fire there. The
// byte-path counters in the results are the proof of which path ran.
type zcEnv struct {
	store *storage.MemStore
	l     net.Listener
	addr  string
}

func newZCEnv() (*zcEnv, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench: loopback listen: %w", err)
	}
	store := storage.NewMemStore()
	go httpserv.New(store, httpserv.Options{}).Serve(l)
	return &zcEnv{store: store, l: l, addr: l.Addr().String()}, nil
}

func (e *zcEnv) Close() { e.l.Close() }

// newClient builds a davix client that dials the loopback server over
// plain TCP — the connections it pools are *net.TCPConn, which is what
// makes them eligible for the kernel byte path.
func (e *zcEnv) newClient(opts core.Options) (*core.Client, error) {
	opts.Dialer = pool.DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	})
	if opts.Pool.MaxPerHost == 0 {
		opts.Pool.MaxPerHost = zcStreams
	}
	return core.NewClient(opts)
}

// fileOnlyWriterAt hides the *os.File from the downloader, forcing the
// streaming pooled path even with verification off — the digest-free
// pooled baseline the "≤3% verification overhead" claim is measured
// against (kernel vs pooled would conflate copy savings with digest cost).
type fileOnlyWriterAt struct{ f *os.File }

func (w fileOnlyWriterAt) WriteAt(p []byte, off int64) (int, error) { return w.f.WriteAt(p, off) }

// Download byte-path variants.
const (
	zcLegacy = "legacy buffers" // PR-4 path: materialize each chunk, then WriteAt
	zcKernel = "kernel splice"  // stream raw socket -> file, zero userspace copies
	zcPooled = "pooled stream"  // stream through 64 KiB pooled buffers, no digest
	zcVerify = "pooled+digest"  // pooled stream with the inline adler32 tee
)

// zcDownload times `repeats` multi-stream downloads of a size-byte object
// in the given byte-path mode, returning the timing sample, client-side
// bytes allocated per op, and the client's final byte-path counters.
func zcDownload(mode string, size int64, repeats int) (*Sample, float64, core.Metrics, error) {
	env, err := newZCEnv()
	if err != nil {
		return nil, 0, core.Metrics{}, err
	}
	defer env.Close()
	blob := make([]byte, size)
	rand.New(rand.NewSource(61)).Read(blob)
	if err := env.store.Put(zcPath, blob); err != nil {
		return nil, 0, core.Metrics{}, err
	}

	opts := core.Options{
		Strategy:   core.StrategyNone,
		ChunkSize:  zcChunk,
		MaxStreams: zcStreams,
	}
	switch mode {
	case zcLegacy:
		opts.LegacyChunkBuffers = true
	case zcVerify:
		opts.VerifyTransfers = true
	}
	client, err := env.newClient(opts)
	if err != nil {
		return nil, 0, core.Metrics{}, err
	}
	defer client.Close()

	f, err := os.CreateTemp("", "zerocopy-*.dat")
	if err != nil {
		return nil, 0, core.Metrics{}, err
	}
	defer os.Remove(f.Name())
	defer f.Close()
	var dst io.WriterAt = f
	if mode == zcPooled {
		dst = fileOnlyWriterAt{f}
	}

	ctx := context.Background()
	op := func() error {
		n, err := client.DownloadMultiStreamTo(ctx, env.addr, zcPath, dst)
		if err != nil {
			return err
		}
		if n != size {
			return fmt.Errorf("bench: zerocopy download: %d bytes, want %d", n, size)
		}
		return nil
	}
	if err := op(); err != nil { // warm the pool and the page cache
		return nil, 0, core.Metrics{}, err
	}
	if repeats <= 0 {
		repeats = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	s := &Sample{}
	for rep := 0; rep < repeats; rep++ {
		timer := startTimer()
		if err := op(); err != nil {
			return nil, 0, core.Metrics{}, err
		}
		s.AddDuration(timer())
	}
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(repeats)
	return s, allocs, client.Metrics(), nil
}

// zcUpload times `repeats` PutReader uploads of a size-byte file. With
// verify off the file-backed body rides the kernel sendfile path; with
// verify on the digest tee forces it through pooled buffers — that
// contrast is the upload half of the byte-path/integrity trade.
func zcUpload(verify bool, size int64, repeats int) (*Sample, float64, core.Metrics, error) {
	env, err := newZCEnv()
	if err != nil {
		return nil, 0, core.Metrics{}, err
	}
	defer env.Close()

	src, err := os.CreateTemp("", "zerocopy-src-*.dat")
	if err != nil {
		return nil, 0, core.Metrics{}, err
	}
	defer os.Remove(src.Name())
	defer src.Close()
	blob := make([]byte, size)
	rand.New(rand.NewSource(62)).Read(blob)
	if _, err := src.Write(blob); err != nil {
		return nil, 0, core.Metrics{}, err
	}

	client, err := env.newClient(core.Options{
		Strategy:        core.StrategyNone,
		VerifyTransfers: verify,
	})
	if err != nil {
		return nil, 0, core.Metrics{}, err
	}
	defer client.Close()

	ctx := context.Background()
	op := func() error {
		if _, err := src.Seek(0, io.SeekStart); err != nil {
			return err
		}
		return client.PutReader(ctx, env.addr, "/up", src, size)
	}
	if err := op(); err != nil {
		return nil, 0, core.Metrics{}, err
	}
	if repeats <= 0 {
		repeats = 1
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	s := &Sample{}
	for rep := 0; rep < repeats; rep++ {
		timer := startTimer()
		if err := op(); err != nil {
			return nil, 0, core.Metrics{}, err
		}
		s.AddDuration(timer())
	}
	runtime.ReadMemStats(&m1)
	allocs := float64(m1.TotalAlloc-m0.TotalAlloc) / float64(repeats)
	return s, allocs, client.Metrics(), nil
}

// zcLANOverhead times the digest-on/off pair in the regime the ≤3%
// overhead budget is written for: a link-limited 1 Gb/s LAN (the netsim
// profile), where the inline hash overlaps with socket waits instead of
// competing for the same memory bandwidth as the copy loop (loopback TCP
// runs at memory speed, so there the hash is honestly compute-visible —
// that number is reported separately). Both clients share one testbed and
// their ops alternate, so environmental drift hits both samples alike; the
// returned samples are compared by Min, the netsim-shaped floor.
func zcLANOverhead(size int64, repeats int) (plain, verify *Sample, err error) {
	env, err := NewEnv(netsim.LAN(), httpserv.Options{})
	if err != nil {
		return nil, nil, err
	}
	defer env.Close()
	blob := make([]byte, size)
	rand.New(rand.NewSource(65)).Read(blob)
	if err := env.Store.Put(zcPath, blob); err != nil {
		return nil, nil, err
	}

	ctx := context.Background()
	newRunner := func(verify bool) (func() (float64, error), func(), error) {
		client, err := env.NewHTTPClient(core.Options{
			Strategy:        core.StrategyNone,
			ChunkSize:       zcChunk,
			MaxStreams:      zcStreams,
			VerifyTransfers: verify,
			Pool:            pool.Options{MaxPerHost: zcStreams},
		})
		if err != nil {
			return nil, nil, err
		}
		f, err := os.CreateTemp("", "zerocopy-lan-*.dat")
		if err != nil {
			client.Close()
			return nil, nil, err
		}
		op := func() (float64, error) {
			timer := startTimer()
			n, err := client.DownloadMultiStreamTo(ctx, HTTPAddr, zcPath, f)
			if err != nil {
				return 0, err
			}
			if n != size {
				return 0, fmt.Errorf("bench: zerocopy LAN download: %d bytes, want %d", n, size)
			}
			return timer().Seconds(), nil
		}
		cleanup := func() {
			f.Close()
			os.Remove(f.Name())
			client.Close()
		}
		return op, cleanup, nil
	}
	plainOp, plainDone, err := newRunner(false)
	if err != nil {
		return nil, nil, err
	}
	defer plainDone()
	verifyOp, verifyDone, err := newRunner(true)
	if err != nil {
		return nil, nil, err
	}
	defer verifyDone()

	// Warm both pools, then alternate measured ops pairwise.
	if _, err := plainOp(); err != nil {
		return nil, nil, err
	}
	if _, err := verifyOp(); err != nil {
		return nil, nil, err
	}
	if repeats <= 0 {
		repeats = 1
	}
	plain, verify = &Sample{}, &Sample{}
	for rep := 0; rep < repeats; rep++ {
		d, err := plainOp()
		if err != nil {
			return nil, nil, err
		}
		plain.Add(d)
		d, err = verifyOp()
		if err != nil {
			return nil, nil, err
		}
		verify.Add(d)
	}
	return plain, verify, nil
}

// zcThroughput renders a sample as MiB/s moved.
func zcThroughput(s *Sample, size int64) string {
	if s.Mean() == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f MiB/s", float64(size)/(1<<20)/s.Mean())
}

// Zerocopy measures the PR-7 byte plane: the legacy chunk-materialize
// download versus the streaming scatter path in its three byte-path modes
// (kernel splice, pooled, pooled with the inline digest), plus the
// sendfile-versus-teed upload pair. Runs over real loopback TCP — the one
// experiment where the kernel path can actually fire — and reports the
// client's own byte-path counters next to each timing so the JSON is
// self-proving about which path moved the bytes. Not in the paper: the
// paper's davix copies every payload byte through userspace; this
// quantifies what the zero-copy plane saves and what inline end-to-end
// integrity costs on top of it.
func Zerocopy(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title: "Zero-copy byte plane: kernel vs pooled vs legacy, inline-digest overhead",
		Columns: []string{"direction", "byte path", "time/op", "throughput",
			"allocs/op", "kernel MiB", "pooled MiB", "verified"},
	}

	type dlRow struct {
		mode   string
		s      *Sample
		allocs float64
		m      core.Metrics
	}
	var rows []dlRow
	for _, mode := range []string{zcLegacy, zcPooled, zcVerify, zcKernel} {
		s, allocs, m, err := zcDownload(mode, zcBenchSize, opts.Repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: zerocopy %s: %w", mode, err)
		}
		rows = append(rows, dlRow{mode, s, allocs, m})
		table.AddRow("download", mode, formatDur(s), zcThroughput(s, zcBenchSize),
			fmtBytes(allocs),
			fmt.Sprintf("%.0f", float64(m.KernelBytesDown)/(1<<20)),
			fmt.Sprintf("%.0f", float64(m.PooledBytesDown)/(1<<20)),
			fmt.Sprintf("%d", m.TransfersVerified))
	}

	for _, verify := range []bool{false, true} {
		mode := "sendfile"
		if verify {
			mode = "teed+digest"
		}
		s, allocs, m, err := zcUpload(verify, zcBenchSize, opts.Repeats)
		if err != nil {
			return nil, fmt.Errorf("bench: zerocopy upload: %w", err)
		}
		table.AddRow("upload", mode, formatDur(s), zcThroughput(s, zcBenchSize),
			fmtBytes(allocs),
			fmt.Sprintf("%.0f", float64(m.KernelBytesUp)/(1<<20)),
			fmt.Sprintf("%.0f", float64(m.PooledBytesUp)/(1<<20)),
			fmt.Sprintf("%d", m.TransfersVerified))
	}

	// The LAN pair compares by Min, so it wants enough draws for both mins
	// to reach the netsim-shaped floor; the ops are cheap (link-limited,
	// not CPU-limited), so extra repeats cost little.
	lanPlain, lanVerify, err := zcLANOverhead(zcBenchSize, max(opts.Repeats*2, 6))
	if err != nil {
		return nil, fmt.Errorf("bench: zerocopy LAN: %w", err)
	}

	legacy, pooled, verify, kernel := rows[0], rows[1], rows[2], rows[3]
	table.Notes = []string{
		fmt.Sprintf("%d MiB object, %d MiB chunks x %d streams, real loopback TCP (netsim pipes cannot splice)",
			zcBenchSize>>20, zcChunk>>20, zcStreams),
		fmt.Sprintf("inline digest wall overhead on the link-limited 1 Gb/s LAN profile: %s (budget: ≤3%% — the hash overlaps with socket waits; best-of-%d, alternated ops); at loopback memory speed the hash is compute-visible: %s time, %s allocs",
			Pct(lanPlain.Min(), lanVerify.Min()), lanPlain.N(),
			Pct(pooled.s.Min(), verify.s.Min()), Pct(pooled.allocs, verify.allocs)),
		fmt.Sprintf("verification-on streaming vs legacy chunk buffers: %s allocs/op vs %s (%.1fx less)",
			fmtBytes(verify.allocs), fmtBytes(legacy.allocs), legacy.allocs/verify.allocs),
		fmt.Sprintf("kernel path moved %.0f%% of download payload without touching userspace",
			100*float64(kernel.m.KernelBytesDown)/float64(kernel.m.KernelBytesDown+kernel.m.PooledBytesDown)),
		"byte-path counters are cumulative over warm-up + measured ops; they prove which path ran, not per-op totals",
	}
	return table, nil
}
