package bench

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/rangev"
	"godavix/internal/rootio"
)

// tinySpec keeps harness tests fast; the full-size runs live in
// cmd/davix-bench and the top-level benchmarks.
var tinySpec = rootio.SynthSpec{Events: 1500, Branches: 6, MeanPayload: 32, Seed: 3}

func tinyOpts() Options {
	return Options{Repeats: 2, Spec: tinySpec, Window: 500}
}

func TestAnalysisSameResultOnBothTransports(t *testing.T) {
	env, err := NewEnv(netsim.Ideal(), httpserv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	if _, err := env.InstallDataset(DatasetPath, tinySpec); err != nil {
		t.Fatal(err)
	}

	hres, err := runHTTPAnalysis(env, tinyOpts(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	xres, err := runXrdAnalysis(env, tinyOpts(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Sum != xres.Sum || hres.Sum == 0 {
		t.Fatalf("sums differ: http=%d xrootd=%d", hres.Sum, xres.Sum)
	}
	if hres.Events != uint64(tinySpec.Events) {
		t.Fatalf("events = %d", hres.Events)
	}
}

func TestAnalysisFraction(t *testing.T) {
	env, err := NewEnv(netsim.Ideal(), httpserv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.InstallDataset(DatasetPath, tinySpec)

	half, err := runHTTPAnalysis(env, tinyOpts(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.Events != uint64(tinySpec.Events)/2 {
		t.Fatalf("half events = %d", half.Events)
	}
	full, err := runHTTPAnalysis(env, tinyOpts(), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if half.Fills >= full.Fills {
		t.Fatalf("fills: half=%d full=%d", half.Fills, full.Fills)
	}
}

// TestFig4Shape asserts the paper's qualitative result: near-parity on
// LAN, XRootD ahead on WAN (its async sliding window hides the RTT).
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	opts := tinyOpts()
	env, err := NewEnv(netsim.WAN(), httpserv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	env.InstallDataset(DatasetPath, opts.Spec)

	httpS, xrdS := &Sample{}, &Sample{}
	for i := 0; i < 3; i++ {
		h, err := runHTTPAnalysis(env, opts, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		x, err := runXrdAnalysis(env, opts, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		httpS.AddDuration(h.Duration)
		xrdS.AddDuration(x.Duration)
	}
	// WAN: XRootD must win (prefetch hides the per-window RTT).
	if xrdS.Min() >= httpS.Min() {
		t.Fatalf("WAN: xrootd (%.3fs) not faster than http (%.3fs)", xrdS.Min(), httpS.Min())
	}
}

func TestFig4TableRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := tinyOpts()
	opts.Repeats = 1
	table, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	var buf bytes.Buffer
	table.Render(&buf)
	out := buf.String()
	for _, want := range []string{"LAN", "PAN", "WAN", "Figure 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestFig1Shape: pipelining's fast requests are HOL-blocked behind the slow
// one; pooled dispatch and multiplexing are not.
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	table, err := Fig1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %+v", table.Rows)
	}
	var buf bytes.Buffer
	table.Render(&buf)
	// Parse the fast-latency column back (ends with "ms").
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscanf(s, &v); err != nil {
			t.Fatalf("cannot parse %q", s)
		}
		return v
	}
	pipelined := parse(table.Rows[0][2])
	pooled := parse(table.Rows[1][2])
	muxed := parse(table.Rows[2][2])
	if pipelined < pooled*2 {
		t.Fatalf("HOL blocking not visible: pipelined=%.1f pooled=%.1f", pipelined, pooled)
	}
	if pipelined < muxed*2 {
		t.Fatalf("HOL blocking not visible vs mux: pipelined=%.1f mux=%.1f", pipelined, muxed)
	}
}

// fmtSscanf parses a leading float out of "12.3ms".
func fmtSscanf(s string, v *float64) (int, error) {
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	var err error
	*v, err = parseFloat(s[:end])
	return 1, err
}

func parseFloat(s string) (float64, error) {
	var v float64
	var frac float64 = 0
	div := 1.0
	seenDot := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '.' {
			seenDot = true
			continue
		}
		d := float64(c - '0')
		if seenDot {
			div *= 10
			frac += d / div
		} else {
			v = v*10 + d
		}
	}
	return v + frac, nil
}

// TestFig2Shape: connection-per-request must be slower and dial more.
func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const reqs = 15
	rec, recDials, err := fig2Run(netsim.PAN(), reqs, 8<<10, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	per, perDials, err := fig2Run(netsim.PAN(), reqs, 8<<10, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if recDials != 1 {
		t.Fatalf("recycled dials = %d, want 1", recDials)
	}
	if perDials != reqs {
		t.Fatalf("per-request dials = %d, want %d", perDials, reqs)
	}
	if per.Min() <= rec.Min() {
		t.Fatalf("per-request (%.3fs) not slower than recycled (%.3fs)", per.Min(), rec.Min())
	}
}

// TestFig3Shape: one vectored request beats K individual ranged GETs on a
// latency-bearing link.
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	env, err := NewEnv(netsim.PAN(), httpserv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	blob := make([]byte, 1<<20)
	env.Store.Put("/blob", blob)
	client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx := context.Background()

	const k = 32
	rr := make([]rangev.Range, k)
	rng := rand.New(rand.NewSource(31))
	for i := range rr {
		rr[i] = rangev.Range{Off: rng.Int63n(1<<20 - 128), Len: 128}
	}
	dsts := make([][]byte, k)
	for i := range dsts {
		dsts[i] = make([]byte, 128)
	}

	timer := startTimer()
	for _, r := range rr {
		if _, err := client.GetRange(ctx, HTTPAddr, "/blob", r.Off, r.Len); err != nil {
			t.Fatal(err)
		}
	}
	indiv := timer()

	timer = startTimer()
	if err := client.ReadVec(ctx, HTTPAddr, "/blob", rr, dsts); err != nil {
		t.Fatal(err)
	}
	vec := timer()

	if vec*4 > indiv {
		t.Fatalf("vectored (%v) not ≫ faster than individual (%v)", vec, indiv)
	}
}

func TestFailoverTable(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := tinyOpts()
	opts.Repeats = 2
	table, err := Failover(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	// 0..2 dead: success. 3 dead: failure.
	for i := 0; i < 3; i++ {
		if table.Rows[i][1] != "true" {
			t.Fatalf("row %d: %+v", i, table.Rows[i])
		}
	}
	if table.Rows[3][1] != "false" {
		t.Fatalf("all-dead row: %+v", table.Rows[3])
	}
}

func TestMultiStreamFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	opts := tinyOpts()
	opts.Repeats = 1
	table, err := MultiStream(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %+v", table.Rows)
	}
}

func TestStatsSample(t *testing.T) {
	s := &Sample{}
	for _, v := range []float64{1, 2, 3, 4} {
		s.Add(v)
	}
	if s.Mean() != 2.5 || s.N() != 4 || s.Min() != 1 {
		t.Fatalf("mean=%v n=%d min=%v", s.Mean(), s.N(), s.Min())
	}
	if d := s.Stddev(); d < 1.29 || d > 1.30 {
		t.Fatalf("stddev = %v", d)
	}
	if Pct(2, 3) != "+50.0%" || Pct(0, 1) != "n/a" {
		t.Fatalf("pct: %s %s", Pct(2, 3), Pct(0, 1))
	}
}

// TestAblationTablesRun exercises every ablation experiment end to end at
// tiny scale, asserting row counts and the key orderings.
func TestAblationTablesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := tinyOpts()
	opts.Repeats = 1

	win, err := WindowAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(win.Rows) != 4 {
		t.Fatalf("window rows = %d", len(win.Rows))
	}

	ps, err := PoolSizeAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.Rows) != 3 {
		t.Fatalf("poolsize rows = %d", len(ps.Rows))
	}
	// Dials column: 1, 4, 16.
	if ps.Rows[0][2] != "1" || ps.Rows[2][2] != "16" {
		t.Fatalf("poolsize dials = %v", ps.Rows)
	}

	pf, err := PrefetchAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Rows) != 2 {
		t.Fatalf("prefetch rows = %d", len(pf.Rows))
	}

	fc, err := FederationCompare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fc.Rows) != 2 {
		t.Fatalf("federation rows = %d", len(fc.Rows))
	}
}

// TestGapAblationRuns covers the data-sieving sweep.
func TestGapAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	opts := tinyOpts()
	opts.Repeats = 1
	table, err := Fig3GapAblation(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}
