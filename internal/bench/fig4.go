package bench

import (
	"context"
	"fmt"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/rootio"
)

// Options configures the experiments.
type Options struct {
	// Repeats is how many times each measurement is taken (the paper used
	// 576 Hammercloud runs; default 5).
	Repeats int
	// Spec describes the synthetic dataset (default: 12000 events,
	// 12 branches — the paper's event count at reduced byte size).
	Spec rootio.SynthSpec
	// Window is the TreeCache window in events (default 3000).
	Window uint64
	// Fractions are the event fractions for the Figure 4 sweep
	// (default 1.0 only, the paper's headline number).
	Fractions []float64
	// Clients sizes the server-load scenario: the gateway's admission
	// limit equals Clients, the at-limit regime runs that many simulated
	// clients and the overload regime twice as many plus the misbehaving
	// cohorts (default 128; CI uses fewer).
	Clients int
	// PrefetchDepth is the window-pipeline depth of the analysis
	// experiment's learned-async configuration (default 3).
	PrefetchDepth int
}

func (o Options) withDefaults() Options {
	if o.Repeats == 0 {
		o.Repeats = 5
	}
	if o.Spec.Events == 0 {
		o.Spec = rootio.SynthSpec{Events: 12000, Branches: 12, MeanPayload: 64, Seed: 1}
	}
	if o.Window == 0 {
		o.Window = 3000
	}
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{1.0}
	}
	if o.Clients == 0 {
		o.Clients = 128
	}
	if o.PrefetchDepth <= 0 {
		o.PrefetchDepth = 3
	}
	return o
}

// DatasetPath is where the event file lives on the testbed store.
const DatasetPath = "/store/events.rnt"

// Fig4 reproduces the paper's Figure 4: execution time of the ROOT
// analysis job reading the event file over LAN / PAN-European / WAN links,
// davix-HTTP versus XRootD. One table row per (link, fraction).
//
// Paper reference values (seconds, 100% of events):
//
//	LAN  HTTP  97.22  XRootD  97.91   (HTTP 0.7% faster)
//	PAN  HTTP 107.88  XRootD 107.80   (parity)
//	WAN  HTTP 203.49  XRootD 173.20   (XRootD 17.5% faster)
func Fig4(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Figure 4: ROOT analysis job execution time (davix/HTTP vs XRootD)",
		Columns: []string{"link", "fraction", "HTTP", "XRootD", "HTTP vs XRootD", "HTTP fills", "XRootD fills"},
		Notes: []string{
			"paper: LAN HTTP 0.7% faster; PAN parity; WAN XRootD 17.5% faster",
			"RTTs scaled 1:25 from the paper's 5/50/300 ms classes",
		},
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.PAN(), netsim.WAN()} {
		env, err := NewEnv(prof, httpserv.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := env.InstallDataset(DatasetPath, opts.Spec); err != nil {
			env.Close()
			return nil, err
		}
		for _, fraction := range opts.Fractions {
			httpS, xrdS := &Sample{}, &Sample{}
			var httpFills, xrdFills int64
			for rep := 0; rep < opts.Repeats; rep++ {
				hres, err := runHTTPAnalysis(env, opts, fraction)
				if err != nil {
					env.Close()
					return nil, fmt.Errorf("fig4 %s http: %w", prof.Name, err)
				}
				httpS.AddDuration(hres.Duration)
				httpFills = hres.Fills

				xres, err := runXrdAnalysis(env, opts, fraction)
				if err != nil {
					env.Close()
					return nil, fmt.Errorf("fig4 %s xrootd: %w", prof.Name, err)
				}
				xrdS.AddDuration(xres.Duration)
				xrdFills = xres.Fills

				if hres.Sum != xres.Sum {
					env.Close()
					return nil, fmt.Errorf("fig4 %s: physics result differs: %d != %d", prof.Name, hres.Sum, xres.Sum)
				}
			}
			table.AddRow(
				prof.Name,
				fmt.Sprintf("%.0f%%", fraction*100),
				Seconds(httpS),
				Seconds(xrdS),
				Pct(xrdS.Mean(), httpS.Mean()),
				fmt.Sprint(httpFills),
				fmt.Sprint(xrdFills),
			)
		}
		env.Close()
	}
	return table, nil
}

// runHTTPAnalysis executes one analysis run over davix/HTTP with a fresh
// client (fresh TCP sessions, as between the paper's spaced test runs).
// VectorParallelism is pinned to 1: the paper's davix ships one multi-range
// request at a time, and Figure 4 reproduces that behaviour — the parallel
// batch dispatch this repo adds on top is measured by VecParBench instead.
func runHTTPAnalysis(env *Env, opts Options, fraction float64) (AnalysisResult, error) {
	client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone, VectorParallelism: 1})
	if err != nil {
		return AnalysisResult{}, err
	}
	defer client.Close()
	ctx := context.Background()
	f, err := env.OpenHTTP(ctx, client, DatasetPath)
	if err != nil {
		return AnalysisResult{}, err
	}
	defer f.Close()
	return RunAnalysis(HTTPSource(f), fraction, opts.Window, nil)
}

// runXrdAnalysis executes one analysis run over the xrootd-like protocol
// with a fresh client.
func runXrdAnalysis(env *Env, opts Options, fraction float64) (AnalysisResult, error) {
	client := env.NewXrdClient()
	defer client.Close()
	ctx := context.Background()
	f, err := env.OpenXrd(ctx, client, DatasetPath)
	if err != nil {
		return AnalysisResult{}, err
	}
	defer f.Close(ctx)
	return RunAnalysis(XrdSource(ctx, f), fraction, opts.Window, nil)
}

// Fig4HTTPAsync is the beyond-paper ablation: the same analysis over HTTP
// with the TreeCache's asynchronous prefetch enabled. It shows the WAN gap
// closing, demonstrating the gap is prefetch, not protocol.
func Fig4HTTPAsync(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	table := &Table{
		Title:   "Ablation: HTTP with async TreeCache prefetch (not in paper)",
		Columns: []string{"link", "HTTP sync", "HTTP async", "async vs sync"},
	}
	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		env, err := NewEnv(prof, httpserv.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := env.InstallDataset(DatasetPath, opts.Spec); err != nil {
			env.Close()
			return nil, err
		}
		syncS, asyncS := &Sample{}, &Sample{}
		for rep := 0; rep < opts.Repeats; rep++ {
			res, err := runHTTPAnalysis(env, opts, 1.0)
			if err != nil {
				env.Close()
				return nil, err
			}
			syncS.AddDuration(res.Duration)

			client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
			if err != nil {
				env.Close()
				return nil, err
			}
			ctx := context.Background()
			f, err := env.OpenHTTP(ctx, client, DatasetPath)
			if err != nil {
				client.Close()
				env.Close()
				return nil, err
			}
			ares, err := RunAnalysis(HTTPSourceAsync(f), 1.0, opts.Window, nil)
			client.Close()
			if err != nil {
				env.Close()
				return nil, err
			}
			asyncS.AddDuration(ares.Duration)
		}
		table.AddRow(prof.Name, Seconds(syncS), Seconds(asyncS), Pct(syncS.Mean(), asyncS.Mean()))
		env.Close()
	}
	return table, nil
}

// eightFillWindow derives a window giving the spec roughly eight TreeCache
// fills (ablation helper).
func eightFillWindow(s rootio.SynthSpec) uint64 {
	w := uint64(s.Events) / 8
	if w == 0 {
		w = 1
	}
	return w
}
