package bench

import (
	"testing"
)

// TestObsChunkAccounting runs the traced workload once and checks the
// chunk-event stream reconstructs the transfers: ChunkDone byte totals in
// each direction must sum exactly to transfers x object size.
func TestObsChunkAccounting(t *testing.T) {
	_, _, ct, transfers, err := runObs(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(transfers) * obsSize
	if got := ct.bytesUp.Load(); got != want {
		t.Errorf("upload chunk bytes = %d, want %d", got, want)
	}
	if got := ct.bytesDown.Load(); got != want {
		t.Errorf("download chunk bytes = %d, want %d", got, want)
	}
	if ct.events.Load() == 0 {
		t.Error("no trace events emitted")
	}
}

func TestObsTableRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	table, err := Obs(Options{Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
}

// BenchmarkObsMultiStreamLAN compares a multi-stream download+upload pair
// with nil hooks against every hook subscribed (CI smoke runs this at
// -benchtime=1x).
func BenchmarkObsMultiStreamLAN(b *testing.B) {
	for _, mode := range []struct {
		name   string
		traced bool
	}{{"hooksNil", false}, {"hooksSubscribed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, _, err := runObs(mode.traced, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
