package bench

import (
	"bufio"
	"context"
	"fmt"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/wire"
	"godavix/internal/xrootd"
)

// Fig1 measures what the paper's Figure 1 illustrates: HTTP/1.1 request
// pipelining suffers head-of-line blocking (one delayed response stalls
// every following response on the connection), while davix's pooled
// dispatch and xrootd's multiplexing do not.
//
// Workload: one artificially slow request plus N fast small requests,
// issued together. Reported: total makespan and the mean completion
// latency of the fast requests under each dispatch discipline.
func Fig1(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		nFast     = 16
		slowDelay = 60 * time.Millisecond
		objSize   = 2048
	)
	table := &Table{
		Title:   "Figure 1: pipelining (HOL blocking) vs pooled dispatch vs multiplexing",
		Columns: []string{"dispatch", "makespan", "fast-req mean latency", "connections"},
		Notes: []string{
			fmt.Sprintf("1 slow request (+%v server delay) + %d fast requests", slowDelay, nFast),
			"pipelining: every fast response waits behind the slow one",
		},
	}

	prof := netsim.PAN()
	mk := func() (*Env, error) {
		env, err := NewEnv(prof, httpserv.Options{})
		if err != nil {
			return nil, err
		}
		payload := make([]byte, objSize)
		env.Store.Put("/slow", payload)
		for i := 0; i < nFast; i++ {
			env.Store.Put(fmt.Sprintf("/obj%d", i), payload)
		}
		return env, nil
	}

	// (a) strict HTTP/1.1 pipelining on one connection.
	env, err := mk()
	if err != nil {
		return nil, err
	}
	env.HTTPServer.SetFault("/slow", httpserv.Fault{Delay: slowDelay})
	mkspan, fastMean, err := runPipelined(env, nFast)
	env.Close()
	if err != nil {
		return nil, err
	}
	table.AddRow("HTTP pipelining", fmt.Sprintf("%.1fms", mkspan.Seconds()*1000),
		fmt.Sprintf("%.1fms", fastMean.Seconds()*1000), "1")

	// (b) davix pooled dispatch: concurrent requests, pool grows.
	env, err = mk()
	if err != nil {
		return nil, err
	}
	env.HTTPServer.SetFault("/slow", httpserv.Fault{Delay: slowDelay})
	mkspan, fastMean, conns, err := runPooled(env, nFast)
	env.Close()
	if err != nil {
		return nil, err
	}
	table.AddRow("davix pool dispatch", fmt.Sprintf("%.1fms", mkspan.Seconds()*1000),
		fmt.Sprintf("%.1fms", fastMean.Seconds()*1000), fmt.Sprint(conns))

	// (c) xrootd multiplexing: one connection, interleaved streams.
	env, err = mk()
	if err != nil {
		return nil, err
	}
	mkspan, fastMean, err = runMuxed(env, nFast, slowDelay)
	env.Close()
	if err != nil {
		return nil, err
	}
	table.AddRow("xrootd multiplexing", fmt.Sprintf("%.1fms", mkspan.Seconds()*1000),
		fmt.Sprintf("%.1fms", fastMean.Seconds()*1000), "1")

	return table, nil
}

// runPipelined writes the slow request then nFast fast requests back to
// back on one raw connection and reads the responses in order (RFC 7230
// pipelining semantics).
func runPipelined(env *Env, nFast int) (makespan time.Duration, fastMean time.Duration, err error) {
	conn, err := env.Net.Dial(HTTPAddr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()

	start := time.Now()
	reqs := []string{"/slow"}
	for i := 0; i < nFast; i++ {
		reqs = append(reqs, fmt.Sprintf("/obj%d", i))
	}
	for _, p := range reqs {
		req := wire.NewRequest("GET", HTTPAddr, p)
		if err := req.Write(conn); err != nil {
			return 0, 0, err
		}
	}
	br := bufio.NewReader(conn)
	var fastTotal time.Duration
	for i := range reqs {
		resp, err := wire.ReadResponse(br, "GET")
		if err != nil {
			return 0, 0, fmt.Errorf("pipelined response %d: %w", i, err)
		}
		if err := resp.Discard(); err != nil {
			return 0, 0, err
		}
		if i > 0 {
			fastTotal += time.Since(start)
		}
	}
	return time.Since(start), fastTotal / time.Duration(nFast), nil
}

// runPooled issues the same request set concurrently through the davix
// pool; the slow request occupies one connection while fast ones proceed
// on others.
func runPooled(env *Env, nFast int) (makespan, fastMean time.Duration, conns int64, err error) {
	client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
	if err != nil {
		return 0, 0, 0, err
	}
	defer client.Close()
	ctx := context.Background()

	start := time.Now()
	type res struct {
		d   time.Duration
		err error
	}
	slowCh := make(chan res, 1)
	fastCh := make(chan res, nFast)
	go func() {
		_, err := client.Get(ctx, HTTPAddr, "/slow")
		slowCh <- res{time.Since(start), err}
	}()
	for i := 0; i < nFast; i++ {
		go func(i int) {
			_, err := client.Get(ctx, HTTPAddr, fmt.Sprintf("/obj%d", i))
			fastCh <- res{time.Since(start), err}
		}(i)
	}
	var fastTotal time.Duration
	for i := 0; i < nFast; i++ {
		r := <-fastCh
		if r.err != nil {
			return 0, 0, 0, r.err
		}
		fastTotal += r.d
	}
	sr := <-slowCh
	if sr.err != nil {
		return 0, 0, 0, sr.err
	}
	return time.Since(start), fastTotal / time.Duration(nFast), client.PoolStats().Dials, nil
}

// runMuxed issues the request set as concurrent reads over one multiplexed
// xrootd connection; server-side handling is concurrent so the slow read
// (simulated with an artificially large object read) does not gate the
// fast ones. The server has no delay fault hook, so the slow request is a
// client-side sleep wrapped around a read on its own stream, matching the
// dispatch (not service-time) comparison.
func runMuxed(env *Env, nFast int, slowDelay time.Duration) (makespan, fastMean time.Duration, err error) {
	client := env.NewXrdClient()
	defer client.Close()
	ctx := context.Background()

	files := make([]*xrootd.File, 0, nFast)
	for i := 0; i < nFast; i++ {
		f, err := client.Open(ctx, fmt.Sprintf("/obj%d", i))
		if err != nil {
			return 0, 0, err
		}
		files = append(files, f)
	}
	slow, err := client.Open(ctx, "/slow")
	if err != nil {
		return 0, 0, err
	}

	start := time.Now()
	type res struct {
		d   time.Duration
		err error
	}
	slowCh := make(chan res, 1)
	fastCh := make(chan res, nFast)
	go func() {
		// The "slow" unit of work: service delay then the read.
		time.Sleep(slowDelay)
		_, err := slow.ReadAt(ctx, make([]byte, 2048), 0)
		slowCh <- res{time.Since(start), err}
	}()
	for _, fr := range files {
		go func(fr *xrootd.File) {
			_, err := fr.ReadAt(ctx, make([]byte, 2048), 0)
			fastCh <- res{time.Since(start), err}
		}(fr)
	}
	var fastTotal time.Duration
	for i := 0; i < nFast; i++ {
		r := <-fastCh
		if r.err != nil {
			return 0, 0, r.err
		}
		fastTotal += r.d
	}
	sr := <-slowCh
	if sr.err != nil {
		return 0, 0, sr.err
	}
	return time.Since(start), fastTotal / time.Duration(nFast), nil
}
