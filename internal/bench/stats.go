package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample aggregates repeated measurements (the paper averages 576 runs;
// we default to far fewer, see Options.Repeats).
type Sample struct {
	values []float64
}

// Add appends one measurement.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddDuration appends a duration in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the sample by linear
// interpolation over the sorted measurements; 0 with no data.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Min returns the smallest measurement.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Table is a rendered experiment result.
type Table struct {
	// Title identifies the experiment ("Figure 4: ...").
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells.
	Rows [][]string
	// Notes are free-form lines printed under the table.
	Notes []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render pretty-prints the table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Seconds formats a mean±stddev pair in seconds.
func Seconds(s *Sample) string {
	return fmt.Sprintf("%.3fs ±%.3f", s.Mean(), s.Stddev())
}

// Millis formats a mean±stddev pair in milliseconds.
func Millis(s *Sample) string {
	return fmt.Sprintf("%.1fms ±%.1f", s.Mean()*1000, s.Stddev()*1000)
}

// Pct formats the relative difference of b versus a ("+17.5%" means b is
// 17.5% slower than a).
func Pct(a, b float64) string {
	if a == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (b-a)/a*100)
}
