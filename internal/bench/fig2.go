package bench

import (
	"context"
	"fmt"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
)

// Fig2 measures the paper's Figure 2 design: the dynamic connection pool
// with aggressive KeepAlive session recycling versus one-connection-per-
// request (HTTP/1.0 style). Each fresh connection pays the TCP handshake
// plus the slow-start ramp; recycling pays them once per session.
//
// Workload: R sequential 16 KiB GETs per link class.
func Fig2(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	const (
		requests = 40
		objSize  = 16 << 10
	)
	table := &Table{
		Title:   "Figure 2: session recycling (KeepAlive pool) vs connection-per-request",
		Columns: []string{"link", "recycled", "per-request", "recycling speedup", "dials recycled", "dials per-req"},
		Notes: []string{
			fmt.Sprintf("%d sequential %d KiB GETs; per-request pays handshake + slow-start each time", requests, objSize>>10),
		},
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.PAN(), netsim.WAN()} {
		recycled, recDials, err := fig2Run(prof, requests, objSize, false, opts.Repeats)
		if err != nil {
			return nil, err
		}
		perReq, prDials, err := fig2Run(prof, requests, objSize, true, opts.Repeats)
		if err != nil {
			return nil, err
		}
		table.AddRow(
			prof.Name,
			Seconds(recycled),
			Seconds(perReq),
			fmt.Sprintf("%.2fx", perReq.Mean()/recycled.Mean()),
			fmt.Sprint(recDials),
			fmt.Sprint(prDials),
		)
	}
	return table, nil
}

// fig2Run times `requests` sequential GETs; disableKeepAlive selects the
// per-request-connection baseline.
func fig2Run(prof netsim.Profile, requests, objSize int, disableKeepAlive bool, repeats int) (*Sample, int64, error) {
	sample := &Sample{}
	var dials int64
	for rep := 0; rep < repeats; rep++ {
		env, err := NewEnv(prof, httpserv.Options{DisableKeepAlive: disableKeepAlive})
		if err != nil {
			return nil, 0, err
		}
		env.Store.Put("/obj", make([]byte, objSize))
		client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone})
		if err != nil {
			env.Close()
			return nil, 0, err
		}
		ctx := context.Background()

		timer := startTimer()
		for i := 0; i < requests; i++ {
			if _, err := client.Get(ctx, HTTPAddr, "/obj"); err != nil {
				client.Close()
				env.Close()
				return nil, 0, err
			}
		}
		sample.AddDuration(timer())
		dials = env.Net.Dials()
		client.Close()
		env.Close()
	}
	return sample, dials, nil
}
