//go:build !race

package bench

// raceEnabled reports whether the race detector is instrumenting this
// build; see race_on.go.
const raceEnabled = false
