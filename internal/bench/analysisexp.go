package bench

import (
	"context"
	"fmt"
	"time"

	"godavix/internal/core"
	"godavix/internal/httpserv"
	"godavix/internal/netsim"
	"godavix/internal/rootio"
)

// analysisComputeSteps is the per-event reconstruction spin of the
// learned-prefetch experiment. Deliberately light: RunAnalysis's
// compute-bound calibration would hide the transfer pipeline this
// experiment measures, so here the WAN runs are transfer-bound — the
// regime where prefetch depth matters.
const analysisComputeSteps = 2000

// analysisTrainEvents bounds the TrainingCache learning phase of the
// learned configurations.
const analysisTrainEvents = 100

// analysisBranchSubset selects every third branch — a sparse column set,
// the typical ROOT selection touching a fraction of the tree. Sparseness
// is what separates the learned configurations from naive next-N
// read-ahead: the naive path drags the untouched columns in between.
func analysisBranchSubset(spec rootio.SynthSpec) []int {
	n := spec.Branches
	if n == 0 {
		n = 12
	}
	var out []int
	for bi := 0; bi < n; bi += 3 {
		out = append(out, bi)
	}
	return out
}

// analysisWindow aligns the TreeCache window to the basket population so
// the loop sees roughly events/EventsPerBasket windows (~47 on the
// default spec) — enough round trips for pipelining to matter on the WAN,
// and basket-aligned so adjacent windows never re-fetch a boundary basket.
func analysisWindow(spec rootio.SynthSpec) uint64 {
	epb := spec.EventsPerBasket
	if epb == 0 {
		epb = 256
	}
	return uint64(epb)
}

// analysisRun is one cold-cache event-loop measurement.
type analysisRun struct {
	dur    time.Duration
	sum    uint64
	fills  int64
	issued int64
	wasted int64
}

// runAnalysisLoop drives the event loop over a per-branch fetch function,
// folding payloads in branch order so every configuration produces the
// same physics sum.
func runAnalysisLoop(events uint64, branches []int, get func(ev uint64, bi int) ([]byte, error)) (uint64, error) {
	var sum uint64
	payloads := make([][]byte, len(branches))
	for ev := uint64(0); ev < events; ev++ {
		for i, bi := range branches {
			p, err := get(ev, bi)
			if err != nil {
				return 0, fmt.Errorf("bench: analysis event %d branch %d: %w", ev, bi, err)
			}
			payloads[i] = p
		}
		sum += spinFold(payloads, analysisComputeSteps)
	}
	return sum, nil
}

// analysisDemand is the floor configuration: no cache anywhere, each
// branch read demand-pages its basket with its own round trip.
func analysisDemand(env *Env, branches []int) (analysisRun, error) {
	client, err := env.NewHTTPClient(core.Options{Strategy: core.StrategyNone, VectorParallelism: 1})
	if err != nil {
		return analysisRun{}, err
	}
	defer client.Close()
	ctx := context.Background()
	f, err := env.OpenHTTP(ctx, client, DatasetPath)
	if err != nil {
		return analysisRun{}, err
	}
	defer f.Close()
	r, err := rootio.OpenReader(HTTPSource(f))
	if err != nil {
		return analysisRun{}, err
	}
	start := time.Now()
	sum, err := runAnalysisLoop(r.Events(), branches, func(ev uint64, bi int) ([]byte, error) {
		vals, err := r.ReadEvent(ev, []int{bi})
		if err != nil {
			return nil, err
		}
		return vals[0], nil
	})
	if err != nil {
		return analysisRun{}, err
	}
	return analysisRun{dur: time.Since(start), sum: sum}, nil
}

// analysisNaiveRA is the same demand loop behind the block cache's
// sequential next-N read-ahead (the default planner): latency is partly
// hidden, but speculation is blind to the branch layout and fetches the
// untouched columns too.
func analysisNaiveRA(env *Env, branches []int) (analysisRun, error) {
	client, err := env.NewHTTPClient(core.Options{
		Strategy:          core.StrategyNone,
		VectorParallelism: 1,
		CacheSize:         32 << 20,
		ReadAhead:         4,
	})
	if err != nil {
		return analysisRun{}, err
	}
	defer client.Close()
	ctx := context.Background()
	f, err := env.OpenHTTP(ctx, client, DatasetPath)
	if err != nil {
		return analysisRun{}, err
	}
	defer f.Close()
	r, err := rootio.OpenReader(HTTPSourceReadAt(f))
	if err != nil {
		return analysisRun{}, err
	}
	start := time.Now()
	sum, err := runAnalysisLoop(r.Events(), branches, func(ev uint64, bi int) ([]byte, error) {
		vals, err := r.ReadEvent(ev, []int{bi})
		if err != nil {
			return nil, err
		}
		return vals[0], nil
	})
	if err != nil {
		return analysisRun{}, err
	}
	return analysisRun{dur: time.Since(start), sum: sum}, nil
}

// analysisLearned runs the TrainingCache loop over HTTP: depth 0 is
// today's synchronous learned TTreeCache (one blocking vectored fill per
// window), depth > 0 pipelines the next windows through the File's
// cancellable asynchronous vectored read.
func analysisLearned(env *Env, branches []int, window uint64, depth int) (analysisRun, error) {
	client, err := env.NewHTTPClient(core.Options{
		Strategy:          core.StrategyNone,
		VectorParallelism: 1,
		PrefetchDepth:     depth,
	})
	if err != nil {
		return analysisRun{}, err
	}
	defer client.Close()
	ctx := context.Background()
	f, err := env.OpenHTTP(ctx, client, DatasetPath)
	if err != nil {
		return analysisRun{}, err
	}
	defer f.Close()
	src := HTTPSource(f)
	if depth > 0 {
		src = HTTPSourcePipelined(f)
	}
	r, err := rootio.OpenReader(src)
	if err != nil {
		return analysisRun{}, err
	}
	t := rootio.NewTrainingCacheDepth(r, analysisTrainEvents, window, depth)
	defer t.Close()
	start := time.Now()
	sum, err := runAnalysisLoop(r.Events(), branches, t.Branch)
	if err != nil {
		return analysisRun{}, err
	}
	res := analysisRun{dur: time.Since(start), sum: sum, fills: t.Fills()}
	res.issued, res.wasted, _ = t.PrefetchStats()
	return res, nil
}

// analysisXrd is the baseline the paper measured davix against: the same
// learned loop over the xrootd-like protocol with its native asynchronous
// readv (automatic depth — xrootd's double buffering).
func analysisXrd(env *Env, branches []int, window uint64) (analysisRun, error) {
	client := env.NewXrdClient()
	defer client.Close()
	ctx := context.Background()
	f, err := env.OpenXrd(ctx, client, DatasetPath)
	if err != nil {
		return analysisRun{}, err
	}
	defer f.Close(ctx)
	r, err := rootio.OpenReader(XrdSource(ctx, f))
	if err != nil {
		return analysisRun{}, err
	}
	t := rootio.NewTrainingCacheDepth(r, analysisTrainEvents, window, -1)
	defer t.Close()
	start := time.Now()
	sum, err := runAnalysisLoop(r.Events(), branches, t.Branch)
	if err != nil {
		return analysisRun{}, err
	}
	return analysisRun{dur: time.Since(start), sum: sum, fills: t.Fills()}, nil
}

// Analysis is the learned-prefetch proof: the cold-cache event loop over
// LAN and WAN links in four HTTP configurations — no cache, naive
// sequential read-ahead, learned synchronous TTreeCache, learned
// asynchronous pipelined TTreeCache — against the xrootd async baseline.
// Every configuration must produce the identical physics sum.
//
// On the WAN row the experiment asserts in-scenario that the pipelined
// path is at least 1.5x faster than the learned synchronous one, lands
// within 15% of the xrootd async baseline, and wastes at most 10% of the
// speculative bytes it issues.
func Analysis(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	depth := opts.PrefetchDepth
	window := analysisWindow(opts.Spec)
	branches := analysisBranchSubset(opts.Spec)
	table := &Table{
		Title:   "Learned prefetch: cold-cache analysis loop, HTTP configurations vs xrootd async",
		Columns: []string{"link", "no cache", "naive RA", "learned sync", "learned async", "xrootd async", "async vs sync", "async vs xrootd", "prefetch waste"},
		Notes: []string{
			fmt.Sprintf("learned async pipelines %d windows of %d events; %d of %d branches read", depth, window, len(branches), opts.Spec.Branches),
			"WAN gates: async ≥1.5x over learned sync, ≤15% behind xrootd async, waste ≤10% of issued prefetch bytes",
		},
	}

	for _, prof := range []netsim.Profile{netsim.LAN(), netsim.WAN()} {
		env, err := NewEnv(prof, httpserv.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := env.InstallDataset(DatasetPath, opts.Spec); err != nil {
			env.Close()
			return nil, err
		}
		demandS, naiveS, syncS, asyncS, xrdS := &Sample{}, &Sample{}, &Sample{}, &Sample{}, &Sample{}
		var issued, wasted int64
		for rep := 0; rep < opts.Repeats; rep++ {
			type cfg struct {
				name   string
				sample *Sample
				run    func() (analysisRun, error)
			}
			cfgs := []cfg{
				{"no-cache", demandS, func() (analysisRun, error) { return analysisDemand(env, branches) }},
				{"naive-ra", naiveS, func() (analysisRun, error) { return analysisNaiveRA(env, branches) }},
				{"learned-sync", syncS, func() (analysisRun, error) { return analysisLearned(env, branches, window, 0) }},
				{"learned-async", asyncS, func() (analysisRun, error) { return analysisLearned(env, branches, window, depth) }},
				{"xrootd-async", xrdS, func() (analysisRun, error) { return analysisXrd(env, branches, window) }},
			}
			var refSum uint64
			for i, c := range cfgs {
				res, err := c.run()
				if err != nil {
					env.Close()
					return nil, fmt.Errorf("analysis %s %s: %w", prof.Name, c.name, err)
				}
				c.sample.AddDuration(res.dur)
				if i == 0 {
					refSum = res.sum
				} else if res.sum != refSum {
					env.Close()
					return nil, fmt.Errorf("analysis %s %s: physics result differs: %d != %d", prof.Name, c.name, res.sum, refSum)
				}
				if c.name == "learned-async" {
					issued += res.issued
					wasted += res.wasted
				}
			}
		}

		wastePct := 0.0
		if issued > 0 {
			wastePct = float64(wasted) / float64(issued) * 100
		}
		if prof.Name == "WAN" {
			// In-scenario gates (chaos/server precedent): the experiment
			// fails the run when the pipeline does not deliver.
			if asyncS.Mean()*1.5 > syncS.Mean() {
				env.Close()
				return nil, fmt.Errorf("analysis WAN: pipelined speedup below 1.5x: sync %.3fs vs async %.3fs",
					syncS.Mean(), asyncS.Mean())
			}
			if asyncS.Mean() > xrdS.Mean()*1.15 {
				env.Close()
				return nil, fmt.Errorf("analysis WAN: pipelined HTTP more than 15%% behind xrootd async: async %.3fs vs xrootd %.3fs",
					asyncS.Mean(), xrdS.Mean())
			}
			if issued == 0 {
				env.Close()
				return nil, fmt.Errorf("analysis WAN: pipelined run issued no speculative bytes")
			}
			if wasted*10 > issued {
				env.Close()
				return nil, fmt.Errorf("analysis WAN: wasted prefetch above 10%%: %d of %d bytes", wasted, issued)
			}
		}

		ratio := "n/a"
		if asyncS.Mean() > 0 {
			ratio = fmt.Sprintf("%.2fx", syncS.Mean()/asyncS.Mean())
		}
		table.AddRow(
			prof.Name,
			Seconds(demandS),
			Seconds(naiveS),
			Seconds(syncS),
			Seconds(asyncS),
			Seconds(xrdS),
			ratio,
			Pct(xrdS.Mean(), asyncS.Mean()),
			fmt.Sprintf("%.1f%%", wastePct),
		)
		env.Close()
	}
	return table, nil
}
