package blockcache

import (
	"context"
	"sort"
)

// Span is one byte range of the object backing a cache key.
type Span struct {
	Off, Len int64
}

// FetchVec retrieves several spans of the object backing key in one
// vectored request (dsts[i] sized to spans[i].Len). The cache uses it for
// coalesced multi-range prefetches — one pooled request instead of one GET
// per block.
type FetchVec func(ctx context.Context, key string, spans []Span, dsts [][]byte) error

// Hint feeds byte spans the caller knows it will read soon (e.g. the
// basket layout of the next analysis windows) into the prefetch planner,
// speculatively fetching whatever the planner approves. size is the object
// size when known, else -1; fetch serves as the fallback when no FetchVec
// is configured. With the default sequential planner this is a no-op.
func (c *Cache) Hint(key string, size int64, spans []Span, fetch Fetch) {
	if c.planner == nil || len(spans) == 0 {
		return
	}
	runs := make([]BlockRange, 0, len(spans))
	for _, sp := range spans {
		if sp.Len <= 0 {
			continue
		}
		first := sp.Off / c.bs
		last := (sp.Off + sp.Len - 1) / c.bs
		runs = append(runs, BlockRange{Start: first, Count: last - first + 1})
	}
	c.prefetchRuns(key, size, normalizeRuns(runs), fetch)
}

// normalizeRuns sorts runs and merges overlapping or adjacent ones.
func normalizeRuns(runs []BlockRange) []BlockRange {
	if len(runs) < 2 {
		return runs
	}
	sort.Slice(runs, func(a, b int) bool { return runs[a].Start < runs[b].Start })
	out := runs[:1]
	for _, ru := range runs[1:] {
		prev := &out[len(out)-1]
		if ru.Start <= prev.Start+prev.Count {
			if end := ru.Start + ru.Count; end > prev.Start+prev.Count {
				prev.Count = end - prev.Start
			}
			continue
		}
		out = append(out, ru)
	}
	return out
}

// prefetchRuns executes a planner's proposal. Plans from the default
// SeqPlanner take the historical per-block path (one background GET per
// block — behaviour preserved exactly); other planners get their runs
// batched into a single vectored request when a FetchVec is configured.
func (c *Cache) prefetchRuns(key string, size int64, runs []BlockRange, fetch Fetch) {
	runs = c.clipRuns(size, runs)
	if len(runs) == 0 {
		return
	}
	_, legacy := c.planner.(*SeqPlanner)
	if c.fetchVec != nil && !legacy {
		c.prefetchVec(key, size, runs)
		return
	}
	for _, ru := range runs {
		for i := int64(0); i < ru.Count; i++ {
			idx := ru.Start + i
			blockLen := c.blockLen(size, idx)
			if blockLen <= 0 {
				return
			}
			if !c.prefetchBlock(key, idx, blockLen, fetch) {
				return // budget exhausted: demand reads take over
			}
		}
	}
}

// clipRuns drops or shortens runs extending past the object size.
func (c *Cache) clipRuns(size int64, runs []BlockRange) []BlockRange {
	if size < 0 {
		return runs
	}
	blocks := (size + c.bs - 1) / c.bs
	out := runs[:0]
	for _, ru := range runs {
		if ru.Start >= blocks {
			continue
		}
		if ru.Start+ru.Count > blocks {
			ru.Count = blocks - ru.Start
		}
		if ru.Count > 0 {
			out = append(out, ru)
		}
	}
	return out
}

// blockLen is the byte length of block idx given the object size.
func (c *Cache) blockLen(size, idx int64) int64 {
	blockLen := c.bs
	if size >= 0 {
		if off := idx * c.bs; off+blockLen > size {
			blockLen = size - off
		}
	}
	return blockLen
}

// prefetchBlock speculatively fetches one block on the legacy path,
// reporting false when the in-flight budget denies the fetch.
func (c *Cache) prefetchBlock(key string, idx, blockLen int64, fetch Fetch) bool {
	bk := blockKey{key, idx}
	c.mu.Lock()
	_, resident := c.blocks[bk]
	_, busy := c.inflight[bk]
	c.mu.Unlock()
	if resident || busy {
		return true // nothing to issue
	}
	if !c.acquireBudget(blockLen) {
		c.pfCancelled.Add(1)
		return false
	}
	c.pfIssuedSpans.Add(1)
	c.pfIssuedBytes.Add(blockLen)
	if c.onPfIssued != nil {
		c.onPfIssued(key, 1, blockLen)
	}
	go func() {
		defer c.releaseBudget(blockLen)
		_, err := c.getBlock(c.bg, key, idx, blockLen, fetch, true)
		if c.onPfSettled != nil {
			c.onPfSettled(key, blockLen, err)
		}
	}()
	return true
}

// prefetchVec fetches the given runs as one coalesced vectored request.
// Every not-yet-resident, not-in-flight block is reserved with a flight so
// demand readers join instead of duplicating the fetch; the in-flight
// budget trims the batch from the tail when speculation would outgrow it.
func (c *Cache) prefetchVec(key string, size int64, runs []BlockRange) {
	type job struct {
		span   Span
		blocks []blockKey
		fls    []*flight
	}
	var jobs []job
	var total int64

	c.mu.Lock()
	gen := c.gen
reserve:
	for _, ru := range runs {
		var cur *job
		for i := int64(0); i < ru.Count; i++ {
			idx := ru.Start + i
			bk := blockKey{key, idx}
			_, resident := c.blocks[bk]
			_, busy := c.inflight[bk]
			if resident || busy {
				cur = nil
				continue
			}
			blockLen := c.blockLen(size, idx)
			if blockLen <= 0 {
				break
			}
			if c.budget > 0 && c.pfInFlight+total+blockLen > c.budget {
				// Budget full: issue what fits, drop the rest.
				c.pfCancelled.Add(1)
				break reserve
			}
			fl := &flight{done: make(chan struct{}), gen: gen}
			c.inflight[bk] = fl
			total += blockLen
			if cur == nil {
				jobs = append(jobs, job{span: Span{Off: idx * c.bs}})
				cur = &jobs[len(jobs)-1]
			}
			cur.span.Len += blockLen
			cur.blocks = append(cur.blocks, bk)
			cur.fls = append(cur.fls, fl)
		}
	}
	if len(jobs) == 0 {
		c.mu.Unlock()
		return
	}
	c.pfInFlight += total
	c.mu.Unlock()

	spans := make([]Span, len(jobs))
	dsts := make([][]byte, len(jobs))
	for i, j := range jobs {
		spans[i] = j.span
		dsts[i] = make([]byte, j.span.Len)
	}
	c.pfIssuedSpans.Add(int64(len(spans)))
	c.pfIssuedBytes.Add(total)
	if c.onPfIssued != nil {
		c.onPfIssued(key, len(spans), total)
	}

	go func() {
		err := c.fetchVec(c.bg, key, spans, dsts)
		c.mu.Lock()
		for i := range jobs {
			var at int64
			for bi, bk := range jobs[i].blocks {
				fl := jobs[i].fls[bi]
				blockLen := c.blockLen(size, bk.idx)
				if err == nil {
					fl.data = dsts[i][at : at+blockLen]
				}
				fl.err = err
				at += blockLen
				delete(c.inflight, bk)
				if err == nil && c.gen == fl.gen {
					c.insertLocked(bk, fl.data, true)
					c.prefetched.Add(1)
				}
			}
		}
		c.mu.Unlock()
		c.releaseBudget(total)
		for i := range jobs {
			for _, fl := range jobs[i].fls {
				close(fl.done)
			}
		}
		if c.onPfSettled != nil {
			c.onPfSettled(key, total, err)
		}
	}()
}

// acquireBudget reserves n speculative in-flight bytes, reporting false
// when the budget would be exceeded (budget 0 means unlimited).
func (c *Cache) acquireBudget(n int64) bool {
	if c.budget <= 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pfInFlight+n > c.budget {
		return false
	}
	c.pfInFlight += n
	return true
}

// releaseBudget returns n reserved bytes.
func (c *Cache) releaseBudget(n int64) {
	if c.budget <= 0 {
		return
	}
	c.mu.Lock()
	c.pfInFlight -= n
	c.mu.Unlock()
}
