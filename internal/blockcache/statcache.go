package blockcache

import (
	"sync"
	"sync/atomic"
	"time"
)

// maxStatEntries bounds the metadata cache so namespace walks over huge
// trees cannot grow it without limit; once full, expired then arbitrary
// entries are shed.
const maxStatEntries = 65536

// StatCache is a TTL'd metadata cache. A key maps either to a value (a
// successful Stat) or to an error (a negative entry, e.g. a 404), so storms
// of Stat/Open/Walk calls on hot and on missing paths are both absorbed.
// It is safe for concurrent use.
type StatCache[V any] struct {
	ttl time.Duration
	now func() time.Time // injectable for tests

	mu      sync.Mutex
	entries map[string]statEntry[V]

	hits, misses atomic.Int64
}

type statEntry[V any] struct {
	val     V
	err     error
	expires time.Time
}

// NewStatCache creates a StatCache whose entries live for ttl.
func NewStatCache[V any](ttl time.Duration) *StatCache[V] {
	return &StatCache[V]{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]statEntry[V]),
	}
}

// Get returns the cached value or negative error for key. ok is false on a
// miss (absent or expired).
func (s *StatCache[V]) Get(key string) (v V, err error, ok bool) {
	s.mu.Lock()
	e, found := s.entries[key]
	if found && s.now().Before(e.expires) {
		s.mu.Unlock()
		s.hits.Add(1)
		return e.val, e.err, true
	}
	if found {
		delete(s.entries, key) // expired
	}
	s.mu.Unlock()
	s.misses.Add(1)
	return v, nil, false
}

// Put caches a successful lookup.
func (s *StatCache[V]) Put(key string, v V) {
	s.put(key, statEntry[V]{val: v})
}

// PutError caches a negative entry: Get will return err until the TTL
// passes or the key is invalidated.
func (s *StatCache[V]) PutError(key string, err error) {
	s.put(key, statEntry[V]{err: err})
}

// PutIfAbsent caches v only when key has no live entry, so opportunistic
// fills (e.g. priming from directory listings, which carry fewer
// properties than a direct lookup) never downgrade a richer cached value
// before its TTL expires.
func (s *StatCache[V]) PutIfAbsent(key string, v V) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok && s.now().Before(e.expires) {
		return
	}
	if _, ok := s.entries[key]; !ok && len(s.entries) >= maxStatEntries {
		s.shedLocked()
	}
	s.entries[key] = statEntry[V]{val: v, expires: s.now().Add(s.ttl)}
}

func (s *StatCache[V]) put(key string, e statEntry[V]) {
	e.expires = s.now().Add(s.ttl)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; !ok && len(s.entries) >= maxStatEntries {
		s.shedLocked()
	}
	s.entries[key] = e
}

// shedLocked makes room: first drops expired entries, then arbitrary ones.
func (s *StatCache[V]) shedLocked() {
	now := s.now()
	for k, e := range s.entries {
		if !now.Before(e.expires) {
			delete(s.entries, k)
		}
	}
	for k := range s.entries {
		if len(s.entries) < maxStatEntries {
			break
		}
		delete(s.entries, k)
	}
}

// Invalidate drops key's entry (positive or negative).
func (s *StatCache[V]) Invalidate(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, key)
}

// Len reports the number of resident entries, expired included.
func (s *StatCache[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Counters returns the hit/miss totals.
func (s *StatCache[V]) Counters() (hits, misses int64) {
	return s.hits.Load(), s.misses.Load()
}
