package blockcache

import (
	"bytes"
	"context"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// vecFetcher serves FetchVec requests out of src, counting calls,
// optionally blocking on gate to let tests hold a speculative fetch in
// flight.
type vecFetcher struct {
	src   []byte
	calls atomic.Int64
	gate  chan struct{} // nil = never block
}

func (v *vecFetcher) fetch(ctx context.Context, key string, spans []Span, dsts [][]byte) error {
	v.calls.Add(1)
	if v.gate != nil {
		select {
		case <-v.gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for i, sp := range spans {
		copy(dsts[i], v.src[sp.Off:sp.Off+sp.Len])
	}
	return nil
}

func TestSeqPlannerMatchesLegacyDetector(t *testing.T) {
	p := NewSeqPlanner(3)

	// A scan starting at block 0 triggers immediately, planning the next
	// three blocks as single-block runs — the historical read-ahead shape.
	if got := p.Plan("k", 0, 0); !reflect.DeepEqual(got, []BlockRange{{1, 1}, {2, 1}, {3, 1}}) {
		t.Fatalf("first sequential plan = %v", got)
	}
	// Continuing the scan keeps planning from the new frontier.
	if got := p.Plan("k", 1, 1); !reflect.DeepEqual(got, []BlockRange{{2, 1}, {3, 1}, {4, 1}}) {
		t.Fatalf("second sequential plan = %v", got)
	}
	// A random jump breaks the streak: nothing planned.
	if got := p.Plan("k", 7, 7); got != nil {
		t.Fatalf("jump planned %v", got)
	}
	// Resuming at the jump's frontier is sequential again.
	if got := p.Plan("k", 8, 8); !reflect.DeepEqual(got, []BlockRange{{9, 1}, {10, 1}, {11, 1}}) {
		t.Fatalf("resumed plan = %v", got)
	}
	// EOF learning bounds the plan exactly like the historical detector:
	// block 10 is known to lie past the end, so nothing is planned there.
	p.LearnEOF("k", 10)
	if got := p.Plan("k", 9, 9); len(got) != 0 {
		t.Fatalf("plan past EOF = %v", got)
	}
	// The sequential planner takes no foreknowledge: Hint is inert, which
	// keeps Cache.Hint a no-op under the default configuration.
	if got := p.Hint("k", []BlockRange{{20, 4}}); got != nil {
		t.Fatalf("seq Hint returned %v", got)
	}
}

func TestStridePlannerLearnsSparsePattern(t *testing.T) {
	p := NewStridePlanner(2)

	// One observation: no pattern yet.
	if got := p.Plan("k", 0, 1); got != nil {
		t.Fatalf("first read planned %v", got)
	}
	// Stride seen once: still not confident.
	if got := p.Plan("k", 4, 5); got != nil {
		t.Fatalf("single-streak planned %v", got)
	}
	// Same stride twice: predict the next two reads at that stride.
	if got := p.Plan("k", 8, 9); !reflect.DeepEqual(got, []BlockRange{{12, 2}, {16, 2}}) {
		t.Fatalf("stride plan = %v", got)
	}
	// Learned EOF clips predictions mid-run and drops those past it.
	p.LearnEOF("k", 17)
	if got := p.Plan("k", 12, 13); !reflect.DeepEqual(got, []BlockRange{{16, 1}}) {
		t.Fatalf("clipped plan = %v", got)
	}
	// Hints are clipped against the same learned bound.
	if got := p.Hint("k", []BlockRange{{16, 4}, {20, 2}}); !reflect.DeepEqual(got, []BlockRange{{16, 1}}) {
		t.Fatalf("clipped hint = %v", got)
	}
	// A backward jump resets the pattern.
	if got := p.Plan("k", 4, 5); got != nil {
		t.Fatalf("backward jump planned %v", got)
	}

	// A contiguous scan is the stride == span special case.
	q := NewStridePlanner(1)
	q.Plan("s", 0, 3)
	q.Plan("s", 4, 7)
	if got := q.Plan("s", 8, 11); !reflect.DeepEqual(got, []BlockRange{{12, 4}}) {
		t.Fatalf("contiguous plan = %v", got)
	}
}

func TestPrefetchVecSingleFlightDedup(t *testing.T) {
	src := randBytes(8192, 21)
	vf := &vecFetcher{src: src, gate: make(chan struct{})}
	sf := &sourceFetch{src: src}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024, Planner: NewStridePlanner(2), FetchVec: vf.fetch})

	// One hint covering blocks 2-3: prefetchVec reserves both blocks with
	// flights before returning, then fetches them as one vectored request
	// held open by the gate.
	c.Hint("k", int64(len(src)), []Span{{Off: 2048, Len: 2048}}, sf.fetch)

	done := make(chan struct{})
	p := make([]byte, 1024)
	go func() {
		defer close(done)
		if _, err := c.ReadThrough(context.Background(), "k", int64(len(src)), p, 2048, sf.fetch); err != nil {
			t.Error(err)
		}
	}()
	// The demand read must be parked on the speculative flight, not off
	// fetching the block itself.
	select {
	case <-done:
		t.Fatal("demand read completed before the prefetch settled")
	case <-time.After(20 * time.Millisecond):
	}
	close(vf.gate)
	<-done

	if !bytes.Equal(p, src[2048:3072]) {
		t.Fatal("wrong bytes from joined prefetch")
	}
	if got := sf.calls.Load(); got != 0 {
		t.Fatalf("demand fetch hit the network %d times despite the in-flight prefetch", got)
	}
	if got := vf.calls.Load(); got != 1 {
		t.Fatalf("vectored prefetch calls = %d, want 1", got)
	}
	st := c.Stats()
	if st.SingleFlightJoins == 0 {
		t.Fatal("demand read did not join the prefetch flight")
	}
	if st.PrefetchIssuedSpans != 1 || st.PrefetchIssuedBytes != 2048 {
		t.Fatalf("issued spans=%d bytes=%d, want 1/2048", st.PrefetchIssuedSpans, st.PrefetchIssuedBytes)
	}
}

func TestPrefetchBudgetExhaustionFallsBackToDemand(t *testing.T) {
	src := randBytes(8192, 22)
	vf := &vecFetcher{src: src, gate: make(chan struct{})}
	sf := &sourceFetch{src: src}
	c := New(Config{
		Capacity: 1 << 20, BlockSize: 1024,
		Planner: NewStridePlanner(4), FetchVec: vf.fetch,
		PrefetchBudget: 1024, // room for exactly one speculative block
	})

	c.Hint("k", int64(len(src)), []Span{{Off: 0, Len: 4096}}, sf.fetch)
	st := c.Stats()
	if st.PrefetchIssuedBytes != 1024 {
		t.Fatalf("issued %d speculative bytes, budget is 1024", st.PrefetchIssuedBytes)
	}
	if st.PrefetchCancelled == 0 {
		t.Fatal("budget exhaustion not recorded")
	}

	// Demand reads are never throttled: block 3 was dropped from the plan,
	// and fetching it on demand proceeds while speculation holds the whole
	// budget.
	p := make([]byte, 1024)
	n, err := c.ReadThrough(context.Background(), "k", int64(len(src)), p, 3072, sf.fetch)
	if err != nil || n != 1024 || !bytes.Equal(p, src[3072:4096]) {
		t.Fatalf("demand read under exhausted budget: n=%d err=%v", n, err)
	}

	close(vf.gate)
	waitFor(t, func() bool { return c.Contains("k", 0) })
}

func TestPrefetchAccuracyAccounting(t *testing.T) {
	src := randBytes(8192, 23)
	vf := &vecFetcher{src: src}
	sf := &sourceFetch{src: src}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024, Planner: NewStridePlanner(2), FetchVec: vf.fetch})

	c.Hint("k", int64(len(src)), []Span{{Off: 2048, Len: 2048}}, sf.fetch)
	waitFor(t, func() bool { return c.Contains("k", 2048) && c.Contains("k", 3072) })

	// A demand read consuming block 2 converts its bytes to useful.
	p := make([]byte, 1024)
	if _, err := c.ReadThrough(context.Background(), "k", int64(len(src)), p, 2048, sf.fetch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, src[2048:3072]) {
		t.Fatal("wrong prefetched bytes")
	}
	st := c.Stats()
	if st.PrefetchUsefulBytes != 1024 {
		t.Fatalf("useful bytes = %d, want 1024", st.PrefetchUsefulBytes)
	}
	if got := sf.calls.Load(); got != 0 {
		t.Fatalf("demand fetch calls = %d, everything should be speculative", got)
	}

	// Invalidate while block 3 is still untouched: its bytes are waste.
	c.Invalidate("k")
	st = c.Stats()
	if st.PrefetchWastedBytes != 1024 {
		t.Fatalf("wasted bytes = %d, want 1024", st.PrefetchWastedBytes)
	}
}
