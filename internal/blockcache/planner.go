package blockcache

import "sync"

// BlockRange is a run of consecutive block indices a planner proposes to
// prefetch.
type BlockRange struct {
	// Start is the first block index of the run.
	Start int64
	// Count is the number of consecutive blocks.
	Count int64
}

// PrefetchPlanner decides which blocks to speculate on. The cache feeds it
// every demand read (Plan) and any externally-registered layout knowledge
// (Hint); the planner owns the per-key pattern state. Implementations must
// be safe for concurrent use; the cache may call LearnEOF and Forget while
// holding its own lock, so planners must never call back into the cache.
type PrefetchPlanner interface {
	// Plan observes a demand read covering blocks [first, last] of key
	// and returns the block runs worth prefetching now (nil for none).
	Plan(key string, first, last int64) []BlockRange

	// Hint registers upcoming block runs known from outside the access
	// stream (e.g. rootio's basket layout for the next analysis windows)
	// and returns the subset the cache should fetch speculatively. A
	// planner that cannot use foreknowledge returns nil.
	Hint(key string, runs []BlockRange) []BlockRange

	// LearnEOF records that block idx lies at or past the end of key's
	// object; no future plan may include it.
	LearnEOF(key string, idx int64)

	// Forget drops all learned state for key (the key was invalidated).
	Forget(key string)
}

// seqState tracks the access pattern of one key for read-ahead detection.
type seqState struct {
	// next is the block index a forward-sequential reader would touch next.
	next int64
	// streak counts consecutive forward-sequential reads.
	streak int
	// limit, when >= 0, is the first block index known to lie past the end
	// of the object (learned from a short block or a failed prefetch);
	// read-ahead never goes there.
	limit int64
}

// SeqPlanner is the default planner: the forward-scan detector the cache
// has always shipped, emitting the next ReadAhead blocks as single-block
// runs once a sequential streak is seen. The cache executes its plans on
// the legacy per-block path, so behaviour (and bytes on the wire) is
// exactly the historical read-ahead.
type SeqPlanner struct {
	ra int

	mu   sync.Mutex
	keys map[string]*seqState
}

// NewSeqPlanner creates the sequential next-N planner. readAhead is how
// many blocks past the current read to prefetch; <= 0 plans nothing.
func NewSeqPlanner(readAhead int) *SeqPlanner {
	return &SeqPlanner{ra: readAhead, keys: make(map[string]*seqState)}
}

// state returns (creating if needed) key's detector state, keeping the map
// bounded. Caller holds mu.
func (p *SeqPlanner) state(key string) *seqState {
	st := p.keys[key]
	if st == nil {
		if len(p.keys) >= maxSeqEntries {
			p.keys = make(map[string]*seqState)
		}
		st = &seqState{limit: -1}
		p.keys[key] = st
	}
	return st
}

// Plan implements PrefetchPlanner with the historical detector: a read
// starting at (or overlapping) where the previous one left off extends the
// streak and triggers next-N read-ahead.
func (p *SeqPlanner) Plan(key string, first, last int64) []BlockRange {
	if p.ra <= 0 {
		return nil
	}
	p.mu.Lock()
	st := p.state(key)
	// Forward-sequential: this read starts at (or overlaps) where the
	// previous one left off. A scan starting at block 0 counts immediately.
	sequential := first <= st.next && last+1 > st.next
	if sequential {
		st.streak++
	} else {
		st.streak = 0
	}
	st.next = last + 1
	limit := st.limit
	trigger := sequential && st.streak >= 1
	p.mu.Unlock()
	if !trigger {
		return nil
	}
	runs := make([]BlockRange, 0, p.ra)
	for i := int64(1); i <= int64(p.ra); i++ {
		idx := last + i
		if limit >= 0 && idx >= limit {
			break // known to be past the end of the object
		}
		runs = append(runs, BlockRange{Start: idx, Count: 1})
	}
	return runs
}

// Hint returns nil: the sequential planner takes no foreknowledge, which
// keeps Cache.Hint a no-op under the default configuration.
func (p *SeqPlanner) Hint(string, []BlockRange) []BlockRange { return nil }

// LearnEOF bounds future plans, mirroring the historical EOF learning.
func (p *SeqPlanner) LearnEOF(key string, idx int64) {
	if p.ra <= 0 {
		return
	}
	p.mu.Lock()
	st := p.state(key)
	if st.limit < 0 || idx < st.limit {
		st.limit = idx
	}
	p.mu.Unlock()
}

// Forget drops key's detector state.
func (p *SeqPlanner) Forget(key string) {
	p.mu.Lock()
	delete(p.keys, key)
	p.mu.Unlock()
}

// strideState is one key's learned access history for the stride planner.
type strideState struct {
	// first and span describe the previous demand read (first block index
	// and block count); span == 0 means no read observed yet.
	first, span int64
	// stride is the last observed first-to-first block distance.
	stride int64
	// streak counts consecutive reads with the same stride.
	streak int
	// limit mirrors seqState.limit.
	limit int64
}

// StridePlanner learns the stride of the demand-read stream — including
// the sparse, branch-skipping pattern of a ROOT analysis touching a subset
// of columns — and keeps the next predicted reads in flight as coalesced
// multi-block runs. It also accepts layout hints (Cache.Hint), clipped
// against the learned end of object, so a reader that knows its future
// byte ranges can drive exact speculation instead of relying on detection.
type StridePlanner struct {
	lookahead int

	mu   sync.Mutex
	keys map[string]*strideState
}

// NewStridePlanner creates a stride/sparse planner keeping lookahead
// predicted reads in flight (<= 0 selects 2).
func NewStridePlanner(lookahead int) *StridePlanner {
	if lookahead <= 0 {
		lookahead = 2
	}
	return &StridePlanner{lookahead: lookahead, keys: make(map[string]*strideState)}
}

// state returns (creating if needed) key's history, keeping the map
// bounded. Caller holds mu.
func (p *StridePlanner) state(key string) *strideState {
	st := p.keys[key]
	if st == nil {
		if len(p.keys) >= maxSeqEntries {
			p.keys = make(map[string]*strideState)
		}
		st = &strideState{limit: -1}
		p.keys[key] = st
	}
	return st
}

// Plan implements PrefetchPlanner: after two reads at the same forward
// stride (a contiguous scan is the stride == span special case) it
// predicts the next lookahead reads at that stride.
func (p *StridePlanner) Plan(key string, first, last int64) []BlockRange {
	count := last - first + 1
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.state(key)
	prevFirst, prevSpan := st.first, st.span
	st.first, st.span = first, count
	if prevSpan == 0 {
		st.stride, st.streak = 0, 0
		return nil
	}
	stride := first - prevFirst
	if stride <= 0 {
		// Backward jump or re-read: pattern broken, start over.
		st.stride, st.streak = 0, 0
		return nil
	}
	if stride == st.stride {
		st.streak++
	} else {
		st.stride, st.streak = stride, 1
	}
	if st.streak < 2 {
		return nil
	}
	runs := make([]BlockRange, 0, p.lookahead)
	for k := int64(1); k <= int64(p.lookahead); k++ {
		start := first + k*stride
		cnt := count
		if st.limit >= 0 {
			if start >= st.limit {
				break
			}
			if start+cnt > st.limit {
				cnt = st.limit - start
			}
		}
		runs = append(runs, BlockRange{Start: start, Count: cnt})
	}
	return runs
}

// Hint accepts externally-known upcoming runs, clipped to the learned end
// of object, and hands them back for speculative fetching.
func (p *StridePlanner) Hint(key string, runs []BlockRange) []BlockRange {
	p.mu.Lock()
	limit := p.state(key).limit
	p.mu.Unlock()
	if limit < 0 {
		return runs
	}
	out := runs[:0]
	for _, ru := range runs {
		if ru.Start >= limit {
			continue
		}
		if ru.Start+ru.Count > limit {
			ru.Count = limit - ru.Start
		}
		out = append(out, ru)
	}
	return out
}

// LearnEOF bounds future plans and hints.
func (p *StridePlanner) LearnEOF(key string, idx int64) {
	p.mu.Lock()
	st := p.state(key)
	if st.limit < 0 || idx < st.limit {
		st.limit = idx
	}
	p.mu.Unlock()
}

// Forget drops key's history.
func (p *StridePlanner) Forget(key string) {
	p.mu.Lock()
	delete(p.keys, key)
	p.mu.Unlock()
}
