// Package blockcache implements the client-side caching layer of the davix
// engine: a block-aligned LRU page cache shared by every file a client
// touches, a sequential-access-detecting read-ahead prefetcher, and a TTL'd
// stat/metadata cache with negative (404) entries.
//
// The paper (Devresse & Furano §2.2–§2.3) hides network round trips with
// pooled keep-alive sessions and TreeCache-style gathered reads; this
// package extends the same idea to repeated and sequential access: once a
// block has crossed a high-RTT link it is served from memory, concurrent
// misses on one block are coalesced into a single GET (single-flight), and
// detected forward scans pull the next blocks asynchronously through the
// connection pool before the application asks for them.
//
// The cache is storage-agnostic: callers hand it a Fetch function per read
// and the cache decides which block-aligned spans actually hit the network.
package blockcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultBlockSize is the block granularity used when Config.BlockSize is
// zero. 64 KiB amortizes one WAN round trip over a useful amount of data
// without blowing up small random reads.
const DefaultBlockSize = 64 << 10

// maxSeqEntries bounds the per-key sequential-access detector state; when
// exceeded the heuristic state is reset (costing at worst one missed
// read-ahead trigger per key, never correctness).
const maxSeqEntries = 4096

// Fetch retrieves [off, off+length) of the remote object backing a cache
// key. The cache invokes it only for block-aligned spans — on demand misses
// and for read-ahead — so one Fetch call is one range GET. A result shorter
// than length means the object ends inside the span.
type Fetch func(ctx context.Context, off, length int64) ([]byte, error)

// Config sizes a Cache.
type Config struct {
	// Capacity is the total number of payload bytes kept across all keys.
	// Required (> 0).
	Capacity int64
	// BlockSize is the cache page size in bytes (default DefaultBlockSize).
	BlockSize int64
	// ReadAhead is how many blocks past the current read are prefetched
	// once a sequential scan is detected. 0 disables read-ahead.
	ReadAhead int
	// Background is the context prefetch fetches run under, typically the
	// owning client's lifetime (default context.Background()). Cancelling
	// it stops in-flight prefetches.
	Background context.Context
	// OnHit, when non-nil, is invoked after demand reads served from
	// memory with the key and the number of blocks served. Called outside
	// the cache lock, possibly from several goroutines at once; must not
	// block.
	OnHit func(key string, blocks int64)
	// OnMiss, when non-nil, is invoked when a demand read needs blocks
	// that are not resident. Same calling rules as OnHit.
	OnMiss func(key string, blocks int64)
	// Planner, when non-nil, replaces the built-in sequential read-ahead
	// planner. When nil and ReadAhead > 0, a SeqPlanner with exactly the
	// historical next-N behaviour is installed.
	Planner PrefetchPlanner
	// FetchVec, when non-nil, lets non-default planners batch multi-block
	// prefetch plans into one vectored request instead of per-block GETs.
	FetchVec FetchVec
	// PrefetchBudget bounds the speculative bytes in flight at once; when
	// the budget is full further speculation is dropped (demand reads are
	// never throttled). 0 means unlimited — the historical behaviour.
	PrefetchBudget int64
	// OnPrefetchIssued, when non-nil, is invoked when speculation puts a
	// fetch on the wire (spans per request, total bytes). Must not block.
	OnPrefetchIssued func(key string, spans int, bytes int64)
	// OnPrefetchSettled, when non-nil, is invoked when a speculative
	// fetch completes, with the requested bytes and its error (nil on
	// success). Must not block.
	OnPrefetchSettled func(key string, bytes int64, err error)
}

// Stats are the cache's monotonic counters. Block counters count blocks,
// not bytes; stat counters are filled in by the owning client from its
// StatCache.
type Stats struct {
	// Hits counts blocks served from memory.
	Hits int64
	// Misses counts blocks that were not resident when a demand read
	// needed them.
	Misses int64
	// Evictions counts blocks dropped to make room at capacity.
	Evictions int64
	// Prefetched counts blocks successfully fetched by the read-ahead
	// engine.
	Prefetched int64
	// SingleFlightJoins counts reads that waited on another reader's
	// in-flight fetch of the same block instead of issuing their own.
	SingleFlightJoins int64
	// BytesCached is the current resident payload size.
	BytesCached int64
	// StatHits / StatMisses count metadata-cache lookups (including
	// negative 404 hits).
	StatHits, StatMisses int64
	// PrefetchIssuedSpans / PrefetchIssuedBytes count the speculative
	// fetch requests put on the wire and the bytes they asked for.
	PrefetchIssuedSpans, PrefetchIssuedBytes int64
	// PrefetchUsefulBytes counts prefetched bytes a demand read later
	// consumed; PrefetchWastedBytes counts prefetched bytes evicted or
	// invalidated untouched. Their ratio is the speculation accuracy.
	PrefetchUsefulBytes, PrefetchWastedBytes int64
	// PrefetchCancelled counts speculative fetches dropped before issue —
	// budget exhaustion, mainly.
	PrefetchCancelled int64
}

// blockKey addresses one cache page: a caller-chosen object key (davix uses
// "host\x00path") plus the block index within the object.
type blockKey struct {
	key string
	idx int64
}

type block struct {
	bk   blockKey
	data []byte
	// spec marks a speculatively fetched block no demand read has touched
	// yet: consumed -> useful bytes, evicted/invalidated -> wasted bytes.
	spec bool
}

// flight is one in-progress block fetch; concurrent readers of the same
// block wait on done instead of issuing duplicate GETs.
type flight struct {
	done chan struct{}
	data []byte
	err  error
	gen  uint64
}

// Cache is a block-aligned LRU page cache with single-flight miss
// coalescing and asynchronous planner-driven read-ahead. It is safe for
// concurrent use.
type Cache struct {
	cap      int64
	bs       int64
	bg       context.Context
	onHit    func(key string, blocks int64)
	onMiss   func(key string, blocks int64)
	planner  PrefetchPlanner
	fetchVec FetchVec
	budget   int64

	onPfIssued  func(key string, spans int, bytes int64)
	onPfSettled func(key string, bytes int64, err error)

	mu       sync.Mutex
	lru      *list.List // of *block; front = most recently used
	blocks   map[blockKey]*list.Element
	used     int64
	inflight map[blockKey]*flight
	// pfInFlight is the speculative byte volume currently reserved
	// against the budget. Guarded by mu.
	pfInFlight int64
	// gen is a cache-wide generation counter bumped by every Invalidate;
	// fetches and PutSpan callers snapshot it before touching the network
	// so a racing invalidation fences their (possibly stale) result out.
	gen uint64

	hits, misses, evictions, prefetched, joins atomic.Int64

	pfIssuedSpans, pfIssuedBytes, pfUseful, pfWasted, pfCancelled atomic.Int64
}

// New creates a Cache. Capacity must be positive; BlockSize defaults to
// DefaultBlockSize and Background to context.Background().
func New(cfg Config) *Cache {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.Background == nil {
		cfg.Background = context.Background()
	}
	planner := cfg.Planner
	if planner == nil && cfg.ReadAhead > 0 {
		planner = NewSeqPlanner(cfg.ReadAhead)
	}
	return &Cache{
		cap:         cfg.Capacity,
		bs:          cfg.BlockSize,
		bg:          cfg.Background,
		onHit:       cfg.OnHit,
		onMiss:      cfg.OnMiss,
		planner:     planner,
		fetchVec:    cfg.FetchVec,
		budget:      cfg.PrefetchBudget,
		onPfIssued:  cfg.OnPrefetchIssued,
		onPfSettled: cfg.OnPrefetchSettled,
		lru:         list.New(),
		blocks:      make(map[blockKey]*list.Element),
		inflight:    make(map[blockKey]*flight),
	}
}

// BlockSize returns the configured page size.
func (c *Cache) BlockSize() int64 { return c.bs }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	bytes := c.used
	c.mu.Unlock()
	return Stats{
		Hits:                c.hits.Load(),
		Misses:              c.misses.Load(),
		Evictions:           c.evictions.Load(),
		Prefetched:          c.prefetched.Load(),
		SingleFlightJoins:   c.joins.Load(),
		BytesCached:         bytes,
		PrefetchIssuedSpans: c.pfIssuedSpans.Load(),
		PrefetchIssuedBytes: c.pfIssuedBytes.Load(),
		PrefetchUsefulBytes: c.pfUseful.Load(),
		PrefetchWastedBytes: c.pfWasted.Load(),
		PrefetchCancelled:   c.pfCancelled.Load(),
	}
}

// Len reports the number of resident blocks.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Contains reports whether the block holding byte off of key is resident,
// without touching LRU order or counters.
func (c *Cache) Contains(key string, off int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.blocks[blockKey{key, off / c.bs}]
	return ok
}

// Generation snapshots the invalidation generation. Callers that fetch
// object data outside the cache (whole-object GETs, vectored reads) take it
// before the network round trip and pass it to PutSpan, which then refuses
// to install the bytes if any Invalidate happened in between.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// ReadThrough fills p with bytes [off, off+len(p)) of the object named key,
// serving resident blocks from memory and fetching missing ones with fetch.
// size is the object size when known (the caller must then keep the request
// within it) or -1 when unknown, in which case a short block marks end of
// object and ReadThrough returns the bytes available. A detected forward
// scan triggers asynchronous read-ahead of the following blocks.
func (c *Cache) ReadThrough(ctx context.Context, key string, size int64, p []byte, off int64, fetch Fetch) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	want := int64(len(p))
	first := off / c.bs
	last := (off + want - 1) / c.bs
	n := 0
	for idx := first; idx <= last; idx++ {
		blockOff := idx * c.bs
		blockLen := c.bs
		if size >= 0 && blockOff+blockLen > size {
			blockLen = size - blockOff
		}
		data, err := c.getBlock(ctx, key, idx, blockLen, fetch, false)
		if err != nil {
			return n, err
		}
		from := off + int64(n) - blockOff
		if from >= int64(len(data)) {
			break // object ends inside this short block
		}
		n += copy(p[n:], data[from:])
		if int64(len(data)) < blockLen {
			break
		}
	}
	c.readAhead(key, first, last, size, fetch)
	return n, nil
}

// getBlock returns the payload of block idx of key, from memory, by joining
// an in-flight fetch, or by fetching [idx*bs, idx*bs+blockLen) itself.
func (c *Cache) getBlock(ctx context.Context, key string, idx, blockLen int64, fetch Fetch, prefetch bool) ([]byte, error) {
	bk := blockKey{key, idx}
	for {
		c.mu.Lock()
		if el, ok := c.blocks[bk]; ok {
			c.lru.MoveToFront(el)
			b := el.Value.(*block)
			if !prefetch && b.spec {
				b.spec = false
				c.pfUseful.Add(int64(len(b.data)))
			}
			data := b.data
			c.mu.Unlock()
			if !prefetch {
				c.hits.Add(1)
				if c.onHit != nil {
					c.onHit(key, 1)
				}
			}
			return data, nil
		}
		if fl, ok := c.inflight[bk]; ok {
			c.mu.Unlock()
			if prefetch {
				return nil, nil // someone else is already on it
			}
			c.joins.Add(1)
			select {
			case <-fl.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			// The flight owner may have been cancelled by its own context
			// while ours is still alive; that is not our error — go around
			// and fetch the block ourselves.
			if (errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded)) && ctx.Err() == nil {
				continue
			}
			return fl.data, fl.err
		}
		fl := &flight{done: make(chan struct{}), gen: c.gen}
		c.inflight[bk] = fl
		c.mu.Unlock()

		if !prefetch {
			c.misses.Add(1)
			if c.onMiss != nil {
				c.onMiss(key, 1)
			}
		}
		data, err := fetch(ctx, idx*c.bs, blockLen)
		if err == nil && int64(len(data)) > blockLen {
			data = data[:blockLen]
		}
		fl.data, fl.err = data, err

		c.mu.Lock()
		delete(c.inflight, bk)
		switch {
		case err == nil && len(data) > 0 && c.gen == fl.gen:
			// No Invalidate raced this fetch: safe to keep.
			c.insertLocked(bk, data, prefetch)
			if prefetch {
				c.prefetched.Add(1)
			}
			if int64(len(data)) < blockLen {
				c.learnEOF(key, idx+1)
			}
		case err != nil && prefetch:
			// A failed prefetch usually means the speculative block lies
			// past the end of the object; stop read-ahead there. (A
			// transient network error over-trims at worst — demand reads
			// are unaffected and Invalidate resets the bound.)
			c.learnEOF(key, idx)
		}
		c.mu.Unlock()
		close(fl.done)
		return data, err
	}
}

// learnEOF records that block idx is the first one past the end of key's
// object, bounding future read-ahead. Safe under mu: planners never call
// back into the cache.
func (c *Cache) learnEOF(key string, idx int64) {
	if c.planner != nil {
		c.planner.LearnEOF(key, idx)
	}
}

// insertLocked adds a block (spec marks it speculative) and evicts from
// the LRU tail to stay within capacity. Caller holds mu.
func (c *Cache) insertLocked(bk blockKey, data []byte, spec bool) {
	if _, ok := c.blocks[bk]; ok {
		return
	}
	c.blocks[bk] = c.lru.PushFront(&block{bk: bk, data: data, spec: spec})
	c.used += int64(len(data))
	for c.used > c.cap && c.lru.Len() > 0 {
		c.removeLocked(c.lru.Back())
		c.evictions.Add(1)
	}
}

// removeLocked drops one block. Caller holds mu.
func (c *Cache) removeLocked(el *list.Element) {
	b := el.Value.(*block)
	c.lru.Remove(el)
	delete(c.blocks, b.bk)
	c.used -= int64(len(b.data))
	if b.spec {
		// Prefetched, never consumed: the speculation missed.
		c.pfWasted.Add(int64(len(b.data)))
	}
}

// readAhead feeds a demand read of blocks [first, last] to the prefetch
// planner and executes whatever it proposes in the background.
func (c *Cache) readAhead(key string, first, last, size int64, fetch Fetch) {
	if c.planner == nil {
		return
	}
	c.prefetchRuns(key, size, c.planner.Plan(key, first, last), fetch)
}

// PeekSpan copies [off, off+len(p)) of key into p if every covering block
// is resident, reporting whether it served the whole span. It never touches
// the network; vectored reads use it to split cached fragments from the
// ones worth a multi-range request. Counters stay block-symmetric: a served
// span counts one hit per block, a failed one one miss per absent block.
func (c *Cache) PeekSpan(key string, p []byte, off int64) bool {
	if len(p) == 0 {
		return true
	}
	want := int64(len(p))
	first := off / c.bs
	last := (off + want - 1) / c.bs
	c.mu.Lock()
	var missing int64
	for idx := first; idx <= last; idx++ {
		if _, ok := c.blocks[blockKey{key, idx}]; !ok {
			missing++
		}
	}
	if missing > 0 {
		c.mu.Unlock()
		c.misses.Add(missing)
		if c.onMiss != nil {
			c.onMiss(key, missing)
		}
		return false
	}
	n := 0
	for idx := first; idx <= last; idx++ {
		el := c.blocks[blockKey{key, idx}]
		data := el.Value.(*block).data
		from := off + int64(n) - idx*c.bs
		if from >= int64(len(data)) {
			c.mu.Unlock()
			return false // span extends past end of object
		}
		n += copy(p[n:], data[from:])
	}
	if int64(n) < want {
		c.mu.Unlock()
		return false
	}
	for idx := first; idx <= last; idx++ {
		el := c.blocks[blockKey{key, idx}]
		if b := el.Value.(*block); b.spec {
			b.spec = false
			c.pfUseful.Add(int64(len(b.data)))
		}
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	c.hits.Add(last - first + 1)
	if c.onHit != nil {
		c.onHit(key, last-first+1)
	}
	return true
}

// PutSpan inserts the blocks fully covered by data (the object's content at
// [off, off+len(data))) without any network traffic — e.g. the fragments a
// vectored read just fetched, a whole-object GET, or the body of an upload
// this client just performed (write-through: the writer knows the new
// content). gen must be a Generation() snapshot taken before the data was
// fetched — or, for a writer, after its own post-upload Invalidate: if any
// other Invalidate happened since, the possibly-stale span is dropped. eof
// marks that data ends exactly at the object's end, allowing the trailing
// partial block to be cached too.
func (c *Cache) PutSpan(key string, gen uint64, off int64, data []byte, eof bool) {
	end := off + int64(len(data))
	idx := (off + c.bs - 1) / c.bs // first block starting inside the span
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	for ; idx*c.bs < end; idx++ {
		blockEnd := idx*c.bs + c.bs
		if blockEnd > end {
			if !eof {
				break
			}
			blockEnd = end
		}
		bk := blockKey{key, idx}
		if _, ok := c.blocks[bk]; ok {
			continue
		}
		if _, ok := c.inflight[bk]; ok {
			continue
		}
		c.insertLocked(bk, append([]byte(nil), data[idx*c.bs-off:blockEnd-off]...), false)
	}
}

// Invalidate drops every resident block of key and bumps the generation so
// in-flight fetches and pending PutSpans cannot install stale data.
// Mutating operations (Put, Delete) and File.Close call it. It returns the
// new generation: a writer that wants to write its own bytes through (its
// upload defined the content) passes exactly this value to PutSpan, so a
// concurrent writer's later invalidation — whose content should win —
// fences the span out. Snapshotting with a separate Generation() call
// after Invalidate would race that second writer.
func (c *Cache) Invalidate(key string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if c.planner != nil {
		c.planner.Forget(key)
	}
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*block).bk.key == key {
			c.removeLocked(el)
		}
	}
	return c.gen
}
