package blockcache

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// sourceFetch serves fetches out of src, counting calls, optionally
// blocking on gate to let tests hold a fetch in flight.
type sourceFetch struct {
	src   []byte
	calls atomic.Int64
	gate  chan struct{} // nil = never block
	offs  struct {
		sync.Mutex
		seen []int64
	}
}

func (s *sourceFetch) fetch(ctx context.Context, off, length int64) ([]byte, error) {
	s.calls.Add(1)
	s.offs.Lock()
	s.offs.seen = append(s.offs.seen, off)
	s.offs.Unlock()
	if s.gate != nil {
		select {
		case <-s.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if off >= int64(len(s.src)) {
		return nil, errors.New("fetch past end")
	}
	end := off + length
	if end > int64(len(s.src)) {
		end = int64(len(s.src))
	}
	return append([]byte(nil), s.src[off:end]...), nil
}

func randBytes(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestReadThroughHitMiss(t *testing.T) {
	sf := &sourceFetch{src: randBytes(8192, 1)}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	ctx := context.Background()

	p := make([]byte, 1536)
	n, err := c.ReadThrough(ctx, "k", int64(len(sf.src)), p, 512, sf.fetch)
	if err != nil || n != 1536 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(p, sf.src[512:2048]) {
		t.Fatal("wrong bytes")
	}
	if got := sf.calls.Load(); got != 2 {
		t.Fatalf("fetch calls = %d, want 2 (blocks 0 and 1)", got)
	}

	// Same span again: both blocks resident, no network.
	n, err = c.ReadThrough(ctx, "k", int64(len(sf.src)), p, 512, sf.fetch)
	if err != nil || n != 1536 || sf.calls.Load() != 2 {
		t.Fatalf("n=%d err=%v calls=%d", n, err, sf.calls.Load())
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 2 || st.BytesCached != 2048 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReadThroughShortBlockUnknownSize(t *testing.T) {
	sf := &sourceFetch{src: randBytes(1500, 2)} // EOF inside block 1
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	p := make([]byte, 4096)
	n, err := c.ReadThrough(context.Background(), "k", -1, p, 0, sf.fetch)
	if err != nil || n != 1500 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(p[:n], sf.src) {
		t.Fatal("wrong bytes")
	}
	if sf.calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (short block 1 stops the walk)", sf.calls.Load())
	}
}

func TestLRUEvictionAtCapacity(t *testing.T) {
	sf := &sourceFetch{src: randBytes(8192, 3)}
	c := New(Config{Capacity: 4096, BlockSize: 1024}) // room for 4 blocks
	ctx := context.Background()
	p := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		if _, err := c.ReadThrough(ctx, "k", 8192, p, int64(i)*1024, sf.fetch); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("resident blocks = %d, want 4", c.Len())
	}
	st := c.Stats()
	if st.Evictions != 4 || st.BytesCached != 4096 {
		t.Fatalf("stats = %+v", st)
	}
	// Oldest blocks are gone, newest present.
	if c.Contains("k", 0) || !c.Contains("k", 7*1024) {
		t.Fatal("LRU order violated")
	}
	// Re-reading an evicted block is a miss again.
	before := sf.calls.Load()
	if _, err := c.ReadThrough(ctx, "k", 8192, p, 0, sf.fetch); err != nil {
		t.Fatal(err)
	}
	if sf.calls.Load() != before+1 {
		t.Fatal("evicted block not refetched")
	}
}

func TestSingleFlightCoalescesConcurrentMisses(t *testing.T) {
	sf := &sourceFetch{src: randBytes(4096, 4), gate: make(chan struct{})}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	ctx := context.Background()

	const readers = 10
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := make([]byte, 1024)
			_, errs[i] = c.ReadThrough(ctx, "k", 4096, p, 0, sf.fetch)
			if errs[i] == nil && !bytes.Equal(p, sf.src[:1024]) {
				errs[i] = errors.New("wrong bytes")
			}
		}(i)
	}
	// Wait until every reader has either started the fetch or parked on it,
	// then release the one in-flight fetch.
	deadline := time.After(5 * time.Second)
	for {
		c.mu.Lock()
		parked := len(c.inflight) == 1
		c.mu.Unlock()
		if parked && c.joins.Load() == readers-1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("readers never coalesced: joins=%d", c.joins.Load())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(sf.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	if got := sf.calls.Load(); got != 1 {
		t.Fatalf("fetch calls = %d, want 1 (single-flight)", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.SingleFlightJoins != readers-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentRandomReads(t *testing.T) {
	src := randBytes(256<<10, 5)
	sf := &sourceFetch{src: src}
	c := New(Config{Capacity: 64 << 10, BlockSize: 4096}) // forces eviction churn
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			p := make([]byte, 3*4096)
			for i := 0; i < 100; i++ {
				off := rng.Int63n(int64(len(src)) - int64(len(p)))
				n, err := c.ReadThrough(ctx, "k", int64(len(src)), p, off, sf.fetch)
				if err != nil {
					t.Errorf("read at %d: %v", off, err)
					return
				}
				if n != len(p) || !bytes.Equal(p, src[off:off+int64(len(p))]) {
					t.Errorf("corrupt read at %d", off)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestReadAheadPrefetchesSequentialScan(t *testing.T) {
	src := randBytes(16<<10, 6)
	sf := &sourceFetch{src: src}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024, ReadAhead: 4})
	ctx := context.Background()
	p := make([]byte, 1024)

	// A scan starting at block 0 arms read-ahead immediately: blocks 1..4
	// should land without demand fetches.
	if _, err := c.ReadThrough(ctx, "k", int64(len(src)), p, 0, sf.fetch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Len() >= 5 })
	if st := c.Stats(); st.Prefetched != 4 {
		t.Fatalf("prefetched = %d, want 4", st.Prefetched)
	}
	for i := 1; i <= 4; i++ {
		n, err := c.ReadThrough(ctx, "k", int64(len(src)), p, int64(i)*1024, sf.fetch)
		if err != nil || n != 1024 || !bytes.Equal(p, src[i*1024:(i+1)*1024]) {
			t.Fatalf("block %d: n=%d err=%v", i, n, err)
		}
	}
	// Blocks 1..4 were demand-served from prefetched pages; the scan keeps
	// arming deeper read-ahead, so only count demand fetches via misses.
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (only block 0)", st.Misses)
	}

	// A random jump resets the streak: no prefetch beyond it until the
	// scan resumes.
	c2 := New(Config{Capacity: 1 << 20, BlockSize: 1024, ReadAhead: 4})
	sf2 := &sourceFetch{src: src}
	if _, err := c2.ReadThrough(ctx, "k", int64(len(src)), p, 9*1024, sf2.fetch); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if st := c2.Stats(); st.Prefetched != 0 {
		t.Fatalf("prefetched after random jump = %d, want 0", st.Prefetched)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestInvalidateDropsBlocksAndFencesInflight(t *testing.T) {
	sf := &sourceFetch{src: randBytes(4096, 7)}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	ctx := context.Background()
	p := make([]byte, 1024)

	if _, err := c.ReadThrough(ctx, "k", 4096, p, 0, sf.fetch); err != nil {
		t.Fatal(err)
	}
	if !c.Contains("k", 0) {
		t.Fatal("block not resident")
	}
	c.Invalidate("k")
	if c.Contains("k", 0) || c.Len() != 0 {
		t.Fatal("Invalidate left blocks behind")
	}

	// Fence: a fetch in flight across an Invalidate must not install its
	// (possibly stale) result.
	gated := &sourceFetch{src: sf.src, gate: make(chan struct{})}
	done := make(chan error, 1)
	go func() {
		q := make([]byte, 1024)
		_, err := c.ReadThrough(ctx, "k", 4096, q, 1024, gated.fetch)
		done <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})
	c.Invalidate("k")
	close(gated.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if c.Contains("k", 1024) {
		t.Fatal("stale in-flight block installed after Invalidate")
	}
}

func TestPeekSpanAndPutSpan(t *testing.T) {
	src := randBytes(8192, 8)
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	p := make([]byte, 2048)

	if c.PeekSpan("k", p, 0) {
		t.Fatal("peek on empty cache succeeded")
	}

	// Unaligned span [100, 5000): only blocks 1..3 are fully covered.
	c.PutSpan("k", c.Generation(), 100, src[100:5000], false)
	if c.Contains("k", 0) || !c.Contains("k", 1024) || !c.Contains("k", 3*1024) || c.Contains("k", 4*1024) {
		t.Fatalf("PutSpan cached wrong blocks (len=%d)", c.Len())
	}
	if !c.PeekSpan("k", p, 1024) {
		t.Fatal("peek of cached span failed")
	}
	if !bytes.Equal(p, src[1024:3072]) {
		t.Fatal("peek returned wrong bytes")
	}
	// Span straddling a missing block fails without partial effects on
	// counters beyond one miss.
	if c.PeekSpan("k", p, 3*1024) {
		t.Fatal("peek across missing block 4 succeeded")
	}

	// eof=true caches the trailing partial block.
	c2 := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	c2.PutSpan("k", c2.Generation(), 0, src[:1500], true)
	if !c2.Contains("k", 0) || !c2.Contains("k", 1024) {
		t.Fatal("eof PutSpan missed blocks")
	}
	q := make([]byte, 1500)
	if !c2.PeekSpan("k", q, 0) || !bytes.Equal(q, src[:1500]) {
		t.Fatal("peek of eof span failed")
	}
}

func TestPutSpanStaleGenerationDropped(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	gen := c.Generation() // snapshot "before the network fetch"
	c.Invalidate("k")     // a Put/Delete races the fetch
	c.PutSpan("k", gen, 0, bytes.Repeat([]byte{'s'}, 1024), true)
	if c.Len() != 0 {
		t.Fatal("stale span installed despite intervening Invalidate")
	}
	// With a current snapshot the install goes through.
	c.PutSpan("k", c.Generation(), 0, bytes.Repeat([]byte{'f'}, 1024), true)
	if c.Len() != 1 {
		t.Fatal("fresh span rejected")
	}
}

func TestJoinerRetriesAfterOwnerCancelled(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	fetch := func(ctx context.Context, off, length int64) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-gate // first (owner) fetch parks until its ctx dies
			return nil, ctx.Err()
		}
		return bytes.Repeat([]byte{'x'}, int(length)), nil
	}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})

	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	ownerDone := make(chan error, 1)
	go func() {
		p := make([]byte, 1024)
		_, err := c.ReadThrough(ownerCtx, "k", 4096, p, 0, fetch)
		ownerDone <- err
	}()
	waitFor(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.inflight) == 1
	})

	joinerDone := make(chan error, 1)
	go func() {
		p := make([]byte, 1024)
		_, err := c.ReadThrough(context.Background(), "k", 4096, p, 0, fetch)
		if err == nil && !bytes.Equal(p, bytes.Repeat([]byte{'x'}, 1024)) {
			err = errors.New("wrong bytes")
		}
		joinerDone <- err
	}()
	waitFor(t, func() bool { return c.joins.Load() == 1 })

	cancelOwner()
	close(gate)
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err = %v", err)
	}
	// The joiner's context is alive: it must not inherit the owner's
	// cancellation but fetch the block itself.
	if err := <-joinerDone; err != nil {
		t.Fatalf("joiner err = %v, want nil via retry", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("fetch calls = %d, want 2 (owner + joiner retry)", calls.Load())
	}
}

func TestReadAheadStopsAtLearnedEOF(t *testing.T) {
	src := randBytes(3*1024+512, 9) // blocks 0..3, block 3 short
	sf := &sourceFetch{src: src}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024, ReadAhead: 4})
	ctx := context.Background()
	p := make([]byte, 1024)

	// Size unknown (-1): the first burst may probe past the end once, but
	// the failure teaches the cache where the object stops.
	if _, err := c.ReadThrough(ctx, "k", -1, p, 0, sf.fetch); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c.Len() == 4 }) // blocks 0..3 resident
	pastEnd := func() (n int64) {
		sf.offs.Lock()
		defer sf.offs.Unlock()
		for _, off := range sf.offs.seen {
			if off >= int64(len(src)) {
				n++
			}
		}
		return n
	}
	waitFor(t, func() bool { return pastEnd() >= 1 })
	first := pastEnd()

	// Continue the scan: read-ahead must not probe past the end again.
	for i := 1; i <= 3; i++ {
		if _, err := c.ReadThrough(ctx, "k", -1, p, int64(i)*1024, sf.fetch); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if now := pastEnd(); now != first {
		t.Fatalf("past-end probes grew %d -> %d after EOF was learned", first, now)
	}
}

func TestFetchErrorNotCached(t *testing.T) {
	fail := errors.New("boom")
	calls := 0
	fetch := func(ctx context.Context, off, length int64) ([]byte, error) {
		calls++
		if calls == 1 {
			return nil, fail
		}
		return make([]byte, length), nil
	}
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	p := make([]byte, 1024)
	if _, err := c.ReadThrough(context.Background(), "k", 4096, p, 0, fetch); !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result cached")
	}
	if _, err := c.ReadThrough(context.Background(), "k", 4096, p, 0, fetch); err != nil {
		t.Fatalf("retry after error: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestDistinctKeysDoNotCollide(t *testing.T) {
	c := New(Config{Capacity: 1 << 20, BlockSize: 1024})
	a := bytes.Repeat([]byte{'a'}, 1024)
	b := bytes.Repeat([]byte{'b'}, 1024)
	c.PutSpan("ka", c.Generation(), 0, a, true)
	c.PutSpan("kb", c.Generation(), 0, b, true)
	p := make([]byte, 1024)
	if !c.PeekSpan("ka", p, 0) || !bytes.Equal(p, a) {
		t.Fatal("ka corrupted")
	}
	c.Invalidate("ka")
	if c.PeekSpan("ka", p, 0) {
		t.Fatal("ka survived invalidate")
	}
	if !c.PeekSpan("kb", p, 0) || !bytes.Equal(p, b) {
		t.Fatal("kb lost by ka invalidate")
	}
}
