package blockcache

import (
	"errors"
	"testing"
	"time"
)

// fakeClock drives an injectable now().
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

type info struct{ size int64 }

func newTestStatCache(ttl time.Duration) (*StatCache[info], *fakeClock) {
	s := NewStatCache[info](ttl)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.now = clk.now
	return s, clk
}

func TestStatCachePositiveAndTTLExpiry(t *testing.T) {
	s, clk := newTestStatCache(time.Second)

	if _, _, ok := s.Get("/f"); ok {
		t.Fatal("hit on empty cache")
	}
	s.Put("/f", info{size: 42})
	v, err, ok := s.Get("/f")
	if !ok || err != nil || v.size != 42 {
		t.Fatalf("get = %+v %v %v", v, err, ok)
	}

	clk.advance(999 * time.Millisecond)
	if _, _, ok := s.Get("/f"); !ok {
		t.Fatal("expired before TTL")
	}
	clk.advance(2 * time.Millisecond)
	if _, _, ok := s.Get("/f"); ok {
		t.Fatal("survived past TTL")
	}
	if s.Len() != 0 {
		t.Fatal("expired entry not purged on Get")
	}
	hits, misses := s.Counters()
	if hits != 2 || misses != 2 {
		t.Fatalf("counters = %d/%d", hits, misses)
	}
}

func TestStatCacheNegativeEntries(t *testing.T) {
	notFound := errors.New("404")
	s, clk := newTestStatCache(time.Second)

	s.PutError("/missing", notFound)
	_, err, ok := s.Get("/missing")
	if !ok || !errors.Is(err, notFound) {
		t.Fatalf("negative get = %v %v", err, ok)
	}
	// Negative entries expire like positive ones.
	clk.advance(2 * time.Second)
	if _, _, ok := s.Get("/missing"); ok {
		t.Fatal("negative entry survived TTL")
	}
	// And a Put replaces a negative entry immediately.
	s.PutError("/f", notFound)
	s.Put("/f", info{size: 7})
	v, err, ok := s.Get("/f")
	if !ok || err != nil || v.size != 7 {
		t.Fatalf("get after overwrite = %+v %v %v", v, err, ok)
	}
}

func TestStatCacheInvalidate(t *testing.T) {
	s, _ := newTestStatCache(time.Minute)
	s.Put("/a", info{size: 1})
	s.Put("/b", info{size: 2})
	s.Invalidate("/a")
	if _, _, ok := s.Get("/a"); ok {
		t.Fatal("/a survived Invalidate")
	}
	if _, _, ok := s.Get("/b"); !ok {
		t.Fatal("/b lost by unrelated Invalidate")
	}
}

func TestStatCachePutIfAbsent(t *testing.T) {
	c := NewStatCache[string](time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Put("k", "rich")
	c.PutIfAbsent("k", "primed")
	if v, _, ok := c.Get("k"); !ok || v != "rich" {
		t.Fatalf("live entry overwritten: %q ok=%v", v, ok)
	}
	// Absent key: primed value lands.
	c.PutIfAbsent("k2", "primed")
	if v, _, ok := c.Get("k2"); !ok || v != "primed" {
		t.Fatalf("absent key not primed: %q ok=%v", v, ok)
	}
	// Expired entry: priming replaces it.
	now = now.Add(2 * time.Minute)
	c.PutIfAbsent("k", "primed")
	if v, _, ok := c.Get("k"); !ok || v != "primed" {
		t.Fatalf("expired entry not refreshed: %q ok=%v", v, ok)
	}
}
