package bufpool

import (
	"sync"
	"testing"
)

func TestGetLenAndClassCap(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 512},
		{512, 512},
		{513, 1024},
		{64 << 10, 64 << 10},
		{64<<10 + 1, 128 << 10},
		{1 << 22, 1 << 22},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Fatalf("Get(%d): len = %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Get(%d): cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversizeBypassesPool(t *testing.T) {
	n := (1 << 22) + 1
	b := Get(n)
	if len(b) != n || cap(b) != n {
		t.Fatalf("oversize Get: len=%d cap=%d", len(b), cap(b))
	}
	Put(b) // must not panic; silently dropped
}

func TestZeroGet(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v", b)
	}
}

func TestRoundTripReuses(t *testing.T) {
	// Drain the class so the test owns its contents.
	ci := classFor(4096)
	for {
		select {
		case <-classes[ci]:
			continue
		default:
		}
		break
	}
	b := Get(4096)
	b[0] = 0xAB
	Put(b)
	b2 := Get(4096)
	if &b2[:1][0] != &b[:1][0] {
		t.Fatal("expected the pooled buffer back")
	}
}

func TestPutForeignCapDropped(t *testing.T) {
	ci := classFor(1000)
	before := len(classes[ci])
	Put(make([]byte, 1000)) // cap 1000: not a class size
	if len(classes[ci]) != before {
		t.Fatal("foreign-cap buffer must not be pooled")
	}
}

func TestDisableDegradesToMake(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	b := Get(4096)
	if len(b) != 4096 {
		t.Fatalf("len = %d", len(b))
	}
	Put(b)
	b2 := Get(4096)
	if len(b2) != 4096 {
		t.Fatalf("len = %d", len(b2))
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				n := 1 << (9 + (i+g)%8)
				b := Get(n)
				if len(b) != n {
					t.Errorf("len = %d, want %d", len(b), n)
					return
				}
				b[0] = byte(g)
				b[n-1] = byte(i)
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkGetPut64K(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(64 << 10)
		Put(buf)
	}
}
