// Package bufpool provides a size-classed pool of byte buffers for the hot
// read paths. The paper's vectored reads ship hundreds of fragments per
// round trip; without pooling, every multipart part, single-part body, and
// scatter scratch buffer is a fresh allocation, and at high concurrency the
// allocator and GC become the bottleneck long before the network does.
//
// Buffers are grouped into power-of-two size classes. Each class keeps a
// bounded free list implemented as a buffered channel: Put on a full class
// simply drops the buffer (bounding pinned memory), and Get on an empty
// class allocates. Channel sends and receives of a []byte copy only the
// slice header, so the steady state is allocation-free without sync.Pool's
// per-Put boxing allocation.
package bufpool

import (
	"math/bits"
	"sync/atomic"
)

const (
	// minBits/maxBits delimit the pooled size classes: 512 B .. 4 MiB.
	// Requests outside the range fall through to plain make.
	minBits = 9
	maxBits = 22

	// classBudget bounds the bytes parked per class, so a burst of huge
	// buffers cannot pin unbounded memory.
	classBudget = 4 << 20

	// maxSlots caps the slot count for the small classes, where the byte
	// budget alone would allow thousands of entries.
	maxSlots = 256
)

var classes [maxBits - minBits + 1]chan []byte

// enabled gates pooling globally; the vecpar benchmark flips it to measure
// the pooled-versus-unpooled ablation.
var enabled atomic.Bool

func init() {
	enabled.Store(true)
	for i := range classes {
		size := 1 << (minBits + i)
		slots := classBudget / size
		if slots > maxSlots {
			slots = maxSlots
		}
		if slots < 2 {
			slots = 2
		}
		classes[i] = make(chan []byte, slots)
	}
}

// SetEnabled turns pooling on or off globally. With pooling off, Get
// degrades to make and Put drops the buffer; used by benchmarks to
// quantify what pooling saves.
func SetEnabled(on bool) { enabled.Store(on) }

// classFor returns the class index whose buffers hold n bytes, or -1 when
// n is outside the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxBits {
		return -1
	}
	b := bits.Len(uint(n - 1)) // smallest power of two >= n
	if b < minBits {
		b = minBits
	}
	return b - minBits
}

// Get returns a buffer of length n. The buffer may come from the pool, so
// its contents are arbitrary; callers must fully overwrite the bytes they
// read.
func Get(n int) []byte {
	if n == 0 {
		return nil
	}
	ci := classFor(n)
	if ci < 0 || !enabled.Load() {
		return make([]byte, n)
	}
	select {
	case b := <-classes[ci]:
		return b[:n]
	default:
		return make([]byte, n, 1<<(minBits+ci))
	}
}

// Put returns b to its size class for reuse. Buffers whose capacity is not
// an exact class size (allocated elsewhere, or re-sliced) are dropped, as
// are buffers arriving when the class free list is full. Callers must not
// retain any reference to b after Put.
func Put(b []byte) {
	c := cap(b)
	if c == 0 || c&(c-1) != 0 || !enabled.Load() {
		return
	}
	ci := classFor(c)
	if ci < 0 || 1<<(minBits+ci) != c {
		return
	}
	select {
	case classes[ci] <- b[:0:c]:
	default:
	}
}
