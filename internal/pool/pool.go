// Package pool implements the paper's dynamic connection pool with
// thread-safe request dispatch and session recycling (paper §2.2, Figure 2).
//
// Instead of HTTP pipelining (head-of-line blocking) or a multiplexing
// protocol change (SPDY/SCTP), davix keeps per-host lists of idle persistent
// connections. Concurrent requests each borrow a connection — so the pool
// grows proportionally to the level of concurrency — and return it for
// recycling once the response body has been consumed. Aggressive KeepAlive
// reuse maximizes TCP connection lifetime and amortizes both the handshake
// and slow-start costs, which is exactly what makes HTTP competitive with
// HPC protocols in the paper's LAN results.
package pool

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"time"
)

// Dialer establishes transport connections; implemented by netsim.Network
// and by net.Dialer adapters.
type Dialer interface {
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(ctx context.Context, addr string) (net.Conn, error)

// DialContext calls f.
func (f DialerFunc) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	return f(ctx, addr)
}

// Options configures a Pool. The zero value gives sensible defaults.
type Options struct {
	// MaxIdlePerHost bounds idle connections kept per host (default 64).
	MaxIdlePerHost int

	// MaxPerHost bounds total concurrent connections per host; 0 means
	// unlimited ("pool size proportional to the level of concurrency", the
	// paper's default behaviour).
	MaxPerHost int

	// IdleTTL discards idle connections older than this (default 60s).
	IdleTTL time.Duration

	// MaxUses recycles a connection at most this many times; 0 = unlimited.
	// Some servers cap requests per connection; this models the client
	// honouring that politely.
	MaxUses int
}

func (o Options) withDefaults() Options {
	if o.MaxIdlePerHost == 0 {
		o.MaxIdlePerHost = 64
	}
	if o.IdleTTL == 0 {
		o.IdleTTL = 60 * time.Second
	}
	return o
}

// Stats aggregates pool activity counters; used by the Figure 2 benches.
type Stats struct {
	// Dials counts new transport connections established.
	Dials int64
	// Reuses counts requests served on a recycled connection.
	Reuses int64
	// Discards counts connections dropped (TTL, MaxUses, error, overflow).
	Discards int64
}

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("pool: closed")

// Pool is a per-host dynamic connection pool. It is safe for concurrent use.
type Pool struct {
	dialer Dialer
	opts   Options

	mu      sync.Mutex
	idle    map[string][]*Conn // host -> LIFO stack of idle conns
	active  map[string]int     // host -> borrowed + idle count
	waiters map[string][]chan struct{}
	closed  bool
	stats   Stats
}

// New creates a Pool dialing through d.
func New(d Dialer, opts Options) *Pool {
	return &Pool{
		dialer:  d,
		opts:    opts.withDefaults(),
		idle:    make(map[string][]*Conn),
		active:  make(map[string]int),
		waiters: make(map[string][]chan struct{}),
	}
}

// Conn is a pooled connection with its buffered reader and usage accounting.
type Conn struct {
	netConn net.Conn
	br      *bufio.Reader
	host    string
	pool    *Pool

	uses     int
	idleAt   time.Time
	borrowed bool
}

// NetConn exposes the underlying transport connection.
func (c *Conn) NetConn() net.Conn { return c.netConn }

// Reader returns the buffered reader tied to the connection. Response
// parsing must go through this reader so buffered bytes are not lost
// across recycling.
func (c *Conn) Reader() *bufio.Reader { return c.br }

// Host returns the host this connection is bound to.
func (c *Conn) Host() string { return c.host }

// Uses reports how many times the connection has been borrowed.
func (c *Conn) Uses() int { return c.uses }

// Get borrows a connection to host, recycling an idle one when available,
// dialing otherwise. When MaxPerHost is reached, Get blocks until a
// connection is released or ctx is done.
func (p *Pool) Get(ctx context.Context, host string) (*Conn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrPoolClosed
		}
		// Fast path: pop the most recently used idle connection (LIFO keeps
		// sessions warm and lets surplus ones expire).
		if stack := p.idle[host]; len(stack) > 0 {
			c := stack[len(stack)-1]
			p.idle[host] = stack[:len(stack)-1]
			if time.Since(c.idleAt) > p.opts.IdleTTL {
				p.active[host]--
				p.stats.Discards++
				p.mu.Unlock()
				c.netConn.Close()
				continue
			}
			c.borrowed = true
			c.uses++
			p.stats.Reuses++
			p.mu.Unlock()
			return c, nil
		}
		if p.opts.MaxPerHost > 0 && p.active[host] >= p.opts.MaxPerHost {
			// At capacity: wait for a Put/Discard.
			ch := make(chan struct{})
			p.waiters[host] = append(p.waiters[host], ch)
			p.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				p.abandonWaiter(host, ch)
				return nil, ctx.Err()
			}
		}
		p.active[host]++
		p.mu.Unlock()

		nc, err := p.dialer.DialContext(ctx, host)
		if err != nil {
			p.mu.Lock()
			p.active[host]--
			p.notifyLocked(host)
			p.mu.Unlock()
			return nil, err
		}
		p.mu.Lock()
		p.stats.Dials++
		p.mu.Unlock()
		return &Conn{
			netConn:  nc,
			br:       bufio.NewReaderSize(nc, 16*1024),
			host:     host,
			pool:     p,
			uses:     1,
			borrowed: true,
		}, nil
	}
}

// Put returns c to the pool for recycling. The caller asserts the
// connection is positioned at a message boundary (response fully consumed)
// and the server allowed keep-alive; otherwise use Discard.
func (p *Pool) Put(c *Conn) {
	if c == nil || !c.borrowed {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c.borrowed = false
	drop := p.closed ||
		(p.opts.MaxUses > 0 && c.uses >= p.opts.MaxUses) ||
		len(p.idle[c.host]) >= p.opts.MaxIdlePerHost
	if drop {
		p.active[c.host]--
		p.stats.Discards++
		p.notifyLocked(c.host)
		go c.netConn.Close()
		return
	}
	c.idleAt = time.Now()
	p.idle[c.host] = append(p.idle[c.host], c)
	p.notifyLocked(c.host)
}

// Discard drops c without recycling (connection poisoned: protocol error,
// unconsumed body, server sent Connection: close).
func (p *Pool) Discard(c *Conn) {
	if c == nil || !c.borrowed {
		return
	}
	p.mu.Lock()
	c.borrowed = false
	p.active[c.host]--
	p.stats.Discards++
	p.notifyLocked(c.host)
	p.mu.Unlock()
	c.netConn.Close()
}

// notifyLocked wakes one waiter for host. Caller holds p.mu.
func (p *Pool) notifyLocked(host string) {
	if ws := p.waiters[host]; len(ws) > 0 {
		close(ws[0])
		p.waiters[host] = ws[1:]
	}
}

func (p *Pool) abandonWaiter(host string, ch chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.waiters[host]
	for i, w := range ws {
		if w == ch {
			p.waiters[host] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
	// Already notified: pass the token on so it is not lost.
	p.notifyLocked(host)
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// IdleCount reports idle connections currently pooled for host.
func (p *Pool) IdleCount(host string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle[host])
}

// ActiveCount reports total (borrowed + idle) connections for host.
func (p *Pool) ActiveCount(host string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active[host]
}

// CloseIdle closes all idle connections, e.g. after a host is known dead.
func (p *Pool) CloseIdle(host string) {
	p.mu.Lock()
	stack := p.idle[host]
	delete(p.idle, host)
	p.active[host] -= len(stack)
	p.stats.Discards += int64(len(stack))
	for range stack {
		p.notifyLocked(host)
	}
	p.mu.Unlock()
	for _, c := range stack {
		c.netConn.Close()
	}
}

// Close shuts the pool down, closing all idle connections. Borrowed
// connections are closed as they are returned.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	var all []*Conn
	for host, stack := range p.idle {
		all = append(all, stack...)
		p.active[host] -= len(stack)
	}
	p.idle = make(map[string][]*Conn)
	for host, ws := range p.waiters {
		for _, ch := range ws {
			close(ch)
		}
		delete(p.waiters, host)
	}
	p.mu.Unlock()
	for _, c := range all {
		c.netConn.Close()
	}
}
