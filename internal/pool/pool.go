// Package pool implements the paper's dynamic connection pool with
// thread-safe request dispatch and session recycling (paper §2.2, Figure 2).
//
// Instead of HTTP pipelining (head-of-line blocking) or a multiplexing
// protocol change (SPDY/SCTP), davix keeps per-host lists of idle persistent
// connections. Concurrent requests each borrow a connection — so the pool
// grows proportionally to the level of concurrency — and return it for
// recycling once the response body has been consumed. Aggressive KeepAlive
// reuse maximizes TCP connection lifetime and amortizes both the handshake
// and slow-start costs, which is exactly what makes HTTP competitive with
// HPC protocols in the paper's LAN results.
//
// The pool is sharded by host: each host hashes (FNV-1a) onto one of a
// fixed array of shards with its own mutex, idle stacks, and waiter lists,
// so concurrent Get/Put traffic against different hosts never contends on
// a shared lock. Activity counters are atomics, read lock-free by Stats.
package pool

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dialer establishes transport connections; implemented by netsim.Network
// and by net.Dialer adapters.
type Dialer interface {
	DialContext(ctx context.Context, addr string) (net.Conn, error)
}

// DialerFunc adapts a function to the Dialer interface.
type DialerFunc func(ctx context.Context, addr string) (net.Conn, error)

// DialContext calls f.
func (f DialerFunc) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	return f(ctx, addr)
}

// Options configures a Pool. The zero value gives sensible defaults.
type Options struct {
	// MaxIdlePerHost bounds idle connections kept per host (default 64).
	MaxIdlePerHost int

	// MaxPerHost bounds total concurrent connections per host; 0 means
	// unlimited ("pool size proportional to the level of concurrency", the
	// paper's default behaviour).
	MaxPerHost int

	// IdleTTL discards idle connections older than this (default 60s).
	IdleTTL time.Duration

	// MaxUses recycles a connection at most this many times; 0 = unlimited.
	// Some servers cap requests per connection; this models the client
	// honouring that politely.
	MaxUses int

	// TLS, when non-nil, upgrades every dialed connection to a TLS client
	// session with this configuration (the handshake runs inside Get, under
	// the caller's context). The config is cloned once at New; when it does
	// not bring a ClientSessionCache the pool installs one LRU cache shared
	// across all host shards, so a reconnect to any host resumes its last
	// session instead of paying a full handshake — Stats.TLSResumes counts
	// the saves. ServerName defaults to the dialed host (port stripped)
	// when the config leaves it empty.
	TLS *tls.Config
}

func (o Options) withDefaults() Options {
	if o.MaxIdlePerHost == 0 {
		o.MaxIdlePerHost = 64
	}
	if o.IdleTTL == 0 {
		o.IdleTTL = 60 * time.Second
	}
	return o
}

// Stats aggregates pool activity counters; used by the Figure 2 benches.
type Stats struct {
	// Dials counts new transport connections established.
	Dials int64
	// Reuses counts requests served on a recycled connection.
	Reuses int64
	// Discards counts connections dropped (TTL, MaxUses, error, overflow).
	Discards int64
	// TLSHandshakes counts completed TLS handshakes (only with Options.TLS).
	TLSHandshakes int64
	// TLSResumes counts handshakes that resumed a cached session instead of
	// running the full exchange.
	TLSResumes int64
}

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("pool: closed")

// numShards spreads hosts over independent locks. A power of two so the
// hash maps with a mask; 16 shards keep contention negligible well past
// the handful of storage hosts a federation client talks to.
const numShards = 16

// shard holds the pool state for the hosts hashing onto it.
type shard struct {
	mu      sync.Mutex
	idle    map[string][]*Conn // host -> LIFO stack of idle conns
	active  map[string]int     // host -> borrowed + idle count
	waiters map[string][]chan struct{}
}

// Pool is a per-host dynamic connection pool. It is safe for concurrent use.
type Pool struct {
	dialer Dialer
	opts   Options

	shards [numShards]shard
	closed atomic.Bool

	dials         atomic.Int64
	reuses        atomic.Int64
	discards      atomic.Int64
	tlsHandshakes atomic.Int64
	tlsResumes    atomic.Int64

	// tlsConf is the cloned Options.TLS with the shared session cache
	// installed (nil when TLS is off).
	tlsConf *tls.Config

	reaperStop  chan struct{}
	reaperStart sync.Once
	reaperHalt  sync.Once
}

// New creates a Pool dialing through d.
func New(d Dialer, opts Options) *Pool {
	p := &Pool{
		dialer:     d,
		opts:       opts.withDefaults(),
		reaperStop: make(chan struct{}),
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.idle = make(map[string][]*Conn)
		s.active = make(map[string]int)
		s.waiters = make(map[string][]chan struct{})
	}
	if p.opts.TLS != nil {
		p.tlsConf = p.opts.TLS.Clone()
		if p.tlsConf.ClientSessionCache == nil {
			// One cache across every host shard: whichever shard dials a
			// host next resumes the session any shard established.
			p.tlsConf.ClientSessionCache = tls.NewLRUClientSessionCache(256)
		}
	}
	return p
}

// upgradeTLS runs the TLS client handshake over raw (a no-op when the pool
// has no TLS config). The session cache shared across shards makes repeat
// handshakes to any previously-seen host resumptions.
func (p *Pool) upgradeTLS(ctx context.Context, host string, raw net.Conn) (net.Conn, error) {
	if p.tlsConf == nil {
		return raw, nil
	}
	cfg := p.tlsConf
	if cfg.ServerName == "" {
		name := host
		if h, _, err := net.SplitHostPort(host); err == nil {
			name = h
		}
		cfg = cfg.Clone()
		cfg.ServerName = name
	}
	tc := tls.Client(raw, cfg)
	if err := tc.HandshakeContext(ctx); err != nil {
		raw.Close()
		return nil, err
	}
	p.tlsHandshakes.Add(1)
	if tc.ConnectionState().DidResume {
		p.tlsResumes.Add(1)
	}
	return tc, nil
}

// shardFor hashes host (FNV-1a) onto its shard. The same host always maps
// to the same shard, so per-host invariants (MaxPerHost, waiter FIFO) are
// guarded by exactly one lock.
func (p *Pool) shardFor(host string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(host); i++ {
		h = (h ^ uint32(host[i])) * 16777619
	}
	return &p.shards[h&(numShards-1)]
}

// Conn is a pooled connection with its buffered reader and usage accounting.
type Conn struct {
	netConn net.Conn
	br      *bufio.Reader
	host    string
	pool    *Pool

	uses     int
	idleAt   time.Time
	borrowed bool
}

// NetConn exposes the underlying transport connection.
func (c *Conn) NetConn() net.Conn { return c.netConn }

// Reader returns the buffered reader tied to the connection. Response
// parsing must go through this reader so buffered bytes are not lost
// across recycling.
func (c *Conn) Reader() *bufio.Reader { return c.br }

// Host returns the host this connection is bound to.
func (c *Conn) Host() string { return c.host }

// Uses reports how many times the connection has been borrowed.
func (c *Conn) Uses() int { return c.uses }

// Get borrows a connection to host, recycling an idle one when available,
// dialing otherwise. When MaxPerHost is reached, Get blocks until a
// connection is released or ctx is done.
func (p *Pool) Get(ctx context.Context, host string) (*Conn, error) {
	s := p.shardFor(host)
	for {
		if p.closed.Load() {
			return nil, ErrPoolClosed
		}
		s.mu.Lock()
		if p.closed.Load() {
			s.mu.Unlock()
			return nil, ErrPoolClosed
		}
		// Fast path: pop the most recently used idle connection (LIFO keeps
		// sessions warm and lets surplus ones expire).
		if stack := s.idle[host]; len(stack) > 0 {
			c := stack[len(stack)-1]
			if time.Since(c.idleAt) > p.opts.IdleTTL {
				// LIFO order means the top is the freshest: when it has
				// expired, everything under it has too. Retire the whole
				// stack in one batch under a single lock acquisition
				// instead of paying one lock round-trip per stale conn.
				delete(s.idle, host)
				s.active[host] -= len(stack)
				p.discards.Add(int64(len(stack)))
				s.notifyNLocked(host, len(stack))
				s.mu.Unlock()
				for _, sc := range stack {
					sc.netConn.Close()
				}
				continue
			}
			s.idle[host] = stack[:len(stack)-1]
			c.borrowed = true
			c.uses++
			p.reuses.Add(1)
			s.mu.Unlock()
			return c, nil
		}
		if p.opts.MaxPerHost > 0 && s.active[host] >= p.opts.MaxPerHost {
			// At capacity: wait for a Put/Discard.
			ch := make(chan struct{})
			s.waiters[host] = append(s.waiters[host], ch)
			s.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				p.abandonWaiter(s, host, ch)
				return nil, ctx.Err()
			}
		}
		s.active[host]++
		s.mu.Unlock()

		nc, err := p.dialer.DialContext(ctx, host)
		if err == nil {
			nc, err = p.upgradeTLS(ctx, host, nc)
		}
		if err != nil {
			s.mu.Lock()
			s.active[host]--
			s.notifyLocked(host)
			s.mu.Unlock()
			return nil, err
		}
		p.dials.Add(1)
		return &Conn{
			netConn:  nc,
			br:       bufio.NewReaderSize(nc, 16*1024),
			host:     host,
			pool:     p,
			uses:     1,
			borrowed: true,
		}, nil
	}
}

// Put returns c to the pool for recycling. The caller asserts the
// connection is positioned at a message boundary (response fully consumed)
// and the server allowed keep-alive; otherwise use Discard.
func (p *Pool) Put(c *Conn) {
	if c == nil || !c.borrowed {
		return
	}
	s := p.shardFor(c.host)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.borrowed = false
	drop := p.closed.Load() ||
		(p.opts.MaxUses > 0 && c.uses >= p.opts.MaxUses) ||
		len(s.idle[c.host]) >= p.opts.MaxIdlePerHost
	if drop {
		s.active[c.host]--
		p.discards.Add(1)
		s.notifyLocked(c.host)
		go c.netConn.Close()
		return
	}
	c.idleAt = time.Now()
	s.idle[c.host] = append(s.idle[c.host], c)
	s.notifyLocked(c.host)
	// The reaper only matters once connections actually sit idle; starting
	// it lazily keeps never-Closed pools that never park a connection free
	// of background goroutines.
	p.reaperStart.Do(func() { go p.reapLoop() })
}

// Discard drops c without recycling (connection poisoned: protocol error,
// unconsumed body, server sent Connection: close).
func (p *Pool) Discard(c *Conn) {
	if c == nil || !c.borrowed {
		return
	}
	s := p.shardFor(c.host)
	s.mu.Lock()
	c.borrowed = false
	s.active[c.host]--
	p.discards.Add(1)
	s.notifyLocked(c.host)
	s.mu.Unlock()
	c.netConn.Close()
}

// notifyLocked wakes one waiter for host. Caller holds s.mu.
func (s *shard) notifyLocked(host string) {
	if ws := s.waiters[host]; len(ws) > 0 {
		close(ws[0])
		s.waiters[host] = ws[1:]
	}
}

// notifyNLocked wakes up to n waiters for host. Caller holds s.mu.
func (s *shard) notifyNLocked(host string, n int) {
	for i := 0; i < n; i++ {
		s.notifyLocked(host)
	}
}

func (p *Pool) abandonWaiter(s *shard, host string, ch chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ws := s.waiters[host]
	for i, w := range ws {
		if w == ch {
			s.waiters[host] = append(ws[:i], ws[i+1:]...)
			return
		}
	}
	// Already notified: pass the token on so it is not lost.
	s.notifyLocked(host)
}

// reapLoop periodically sweeps every shard for idle connections past the
// TTL, so long-idle hosts release their sockets without waiting for the
// next Get to stumble over them.
func (p *Pool) reapLoop() {
	period := p.opts.IdleTTL / 2
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-p.reaperStop:
			return
		case <-t.C:
			p.reapIdle(time.Now())
		}
	}
}

// reapIdle batch-discards idle connections older than the TTL as of now.
// Stacks are in Put order, oldest at the bottom, so each sweep removes a
// prefix under one lock acquisition per shard.
func (p *Pool) reapIdle(now time.Time) {
	var expired []*Conn
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for host, stack := range s.idle {
			keep := 0
			for keep < len(stack) && now.Sub(stack[keep].idleAt) > p.opts.IdleTTL {
				keep++
			}
			if keep == 0 {
				continue
			}
			expired = append(expired, stack[:keep]...)
			rest := stack[keep:]
			if len(rest) == 0 {
				delete(s.idle, host)
			} else {
				s.idle[host] = append(stack[:0], rest...)
			}
			s.active[host] -= keep
			p.discards.Add(int64(keep))
			s.notifyNLocked(host, keep)
		}
		s.mu.Unlock()
	}
	for _, c := range expired {
		c.netConn.Close()
	}
}

// Stats returns a snapshot of the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Dials:         p.dials.Load(),
		Reuses:        p.reuses.Load(),
		Discards:      p.discards.Load(),
		TLSHandshakes: p.tlsHandshakes.Load(),
		TLSResumes:    p.tlsResumes.Load(),
	}
}

// IdleCount reports idle connections currently pooled for host.
func (p *Pool) IdleCount(host string) int {
	s := p.shardFor(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.idle[host])
}

// ActiveCount reports total (borrowed + idle) connections for host.
func (p *Pool) ActiveCount(host string) int {
	s := p.shardFor(host)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active[host]
}

// CloseIdle closes all idle connections, e.g. after a host is known dead.
func (p *Pool) CloseIdle(host string) {
	s := p.shardFor(host)
	s.mu.Lock()
	stack := s.idle[host]
	delete(s.idle, host)
	s.active[host] -= len(stack)
	p.discards.Add(int64(len(stack)))
	s.notifyNLocked(host, len(stack))
	s.mu.Unlock()
	for _, c := range stack {
		c.netConn.Close()
	}
}

// Close shuts the pool down, closing all idle connections. Borrowed
// connections are closed as they are returned.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.reaperHalt.Do(func() { close(p.reaperStop) })
	var all []*Conn
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for host, stack := range s.idle {
			all = append(all, stack...)
			s.active[host] -= len(stack)
		}
		s.idle = make(map[string][]*Conn)
		for host, ws := range s.waiters {
			for _, ch := range ws {
				close(ch)
			}
			delete(s.waiters, host)
		}
		s.mu.Unlock()
	}
	for _, c := range all {
		c.netConn.Close()
	}
}
