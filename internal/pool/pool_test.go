package pool

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"godavix/internal/netsim"
)

func newFabric(t *testing.T) (*netsim.Network, string) {
	t.Helper()
	n := netsim.New(netsim.Ideal())
	addr := "host:80"
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c // server keeps connections open
		}
	}()
	return n, addr
}

func TestGetDialsThenRecycles(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	defer p.Close()

	c1, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Uses() != 1 {
		t.Fatalf("uses = %d", c1.Uses())
	}
	p.Put(c1)

	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("expected recycled connection")
	}
	if c2.Uses() != 2 {
		t.Fatalf("uses = %d", c2.Uses())
	}
	st := p.Stats()
	if st.Dials != 1 || st.Reuses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n.Dials() != 1 {
		t.Fatalf("network dials = %d", n.Dials())
	}
}

func TestDiscardForcesRedial(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Discard(c1)
	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("discarded connection must not be recycled")
	}
	if n.Dials() != 2 {
		t.Fatalf("network dials = %d", n.Dials())
	}
}

func TestMaxPerHostBlocksUntilRelease(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxPerHost: 1})
	defer p.Close()

	c1, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan *Conn)
	go func() {
		c, err := p.Get(context.Background(), addr)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()

	select {
	case <-got:
		t.Fatal("second Get should block at MaxPerHost=1")
	case <-time.After(30 * time.Millisecond):
	}

	p.Put(c1)
	select {
	case c2 := <-got:
		if c2 != c1 {
			t.Fatal("waiter should receive the recycled connection")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke up")
	}
}

func TestMaxPerHostContextCancel(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxPerHost: 1})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	defer p.Put(c1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Get(ctx, addr)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestIdleTTLExpiry(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{IdleTTL: 10 * time.Millisecond})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Put(c1)
	time.Sleep(25 * time.Millisecond)
	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("stale idle connection must not be recycled")
	}
	if p.Stats().Discards != 1 {
		t.Fatalf("discards = %d", p.Stats().Discards)
	}
}

// TestIdleTTLBatchExpiry: a whole stack of stale idle conns is retired in
// one Get, each counted as a discard.
func TestIdleTTLBatchExpiry(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{IdleTTL: 10 * time.Millisecond})
	defer p.Close()

	ctx := context.Background()
	conns := make([]*Conn, 3)
	for i := range conns {
		c, err := p.Get(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	for _, c := range conns {
		p.Put(c)
	}
	if got := p.IdleCount(addr); got != 3 {
		t.Fatalf("idle = %d, want 3", got)
	}
	time.Sleep(25 * time.Millisecond)
	c, err := p.Get(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range conns {
		if c == old {
			t.Fatal("stale connection recycled")
		}
	}
	if got := p.Stats().Discards; got != 3 {
		t.Fatalf("discards = %d, want 3", got)
	}
	if got := p.IdleCount(addr); got != 0 {
		t.Fatalf("idle after expiry = %d", got)
	}
}

// TestReapIdleSweep: the background sweep drops only the expired prefix of
// each idle stack and keeps per-host accounting intact.
func TestReapIdleSweep(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{IdleTTL: 50 * time.Millisecond})
	defer p.Close()

	ctx := context.Background()
	c1, _ := p.Get(ctx, addr)
	c2, _ := p.Get(ctx, addr)
	p.Put(c1)
	time.Sleep(30 * time.Millisecond)
	p.Put(c2) // c1 is older than c2

	p.reapIdle(time.Now().Add(30 * time.Millisecond)) // c1 past TTL, c2 not
	if got := p.IdleCount(addr); got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}
	if got := p.ActiveCount(addr); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	c3, err := p.Get(ctx, addr)
	if err != nil {
		t.Fatal(err)
	}
	if c3 != c2 {
		t.Fatal("survivor should be the fresher connection")
	}
}

// TestShardedHostsConcurrent hammers many hosts at once; per-host counters
// must stay exact despite the sharded locking.
func TestShardedHostsConcurrent(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	hosts := make([]string, 8)
	for i := range hosts {
		hosts[i] = string(rune('a'+i)) + ":80"
		l, err := n.Listen(hosts[i])
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(l net.Listener) {
			for {
				if _, err := l.Accept(); err != nil {
					return
				}
			}
		}(l)
	}
	p := New(n, Options{MaxPerHost: 2})
	defer p.Close()

	var wg sync.WaitGroup
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				host := hosts[(w+i)%len(hosts)]
				c, err := p.Get(context.Background(), host)
				if err != nil {
					t.Error(err)
					return
				}
				p.Put(c)
			}
		}(w)
	}
	wg.Wait()
	for _, h := range hosts {
		if a := p.ActiveCount(h); a < 0 || a > 2 {
			t.Fatalf("host %s active = %d", h, a)
		}
	}
}

func TestMaxUsesRetiresConnection(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxUses: 2})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Put(c1)
	c2, _ := p.Get(context.Background(), addr)
	if c2 != c1 {
		t.Fatal("second use should recycle")
	}
	p.Put(c2) // uses == MaxUses: retired
	c3, _ := p.Get(context.Background(), addr)
	if c3 == c1 {
		t.Fatal("connection past MaxUses must be retired")
	}
	_ = n
}

func TestMaxIdleOverflowCloses(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxIdlePerHost: 1})
	defer p.Close()

	ctx := context.Background()
	c1, _ := p.Get(ctx, addr)
	c2, _ := p.Get(ctx, addr)
	p.Put(c1)
	p.Put(c2) // overflow: closed
	if got := p.IdleCount(addr); got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}
	if p.Stats().Discards != 1 {
		t.Fatalf("discards = %d", p.Stats().Discards)
	}
	_ = n
}

// TestNeverExceedsMaxPerHost hammers the pool with concurrent borrowers and
// asserts the per-host cap invariant throughout.
func TestNeverExceedsMaxPerHost(t *testing.T) {
	n, addr := newFabric(t)
	const cap = 4
	p := New(n, Options{MaxPerHost: cap})
	defer p.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	inUse, peak := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Get(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inUse++
			if inUse > peak {
				peak = inUse
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inUse--
			mu.Unlock()
			p.Put(c)
		}()
	}
	wg.Wait()
	if peak > cap {
		t.Fatalf("peak concurrent borrowed = %d > cap %d", peak, cap)
	}
	if p.ActiveCount(addr) > cap {
		t.Fatalf("active = %d > cap", p.ActiveCount(addr))
	}
}

// TestNoDoubleBorrow: a recycled conn is never handed to two workers at
// once (DESIGN.md invariant).
func TestNoDoubleBorrow(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxPerHost: 2})
	defer p.Close()

	var mu sync.Mutex
	held := make(map[*Conn]bool)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Get(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if held[c] {
				t.Errorf("connection double-borrowed")
			}
			held[c] = true
			mu.Unlock()
			time.Sleep(500 * time.Microsecond)
			mu.Lock()
			held[c] = false
			mu.Unlock()
			p.Put(c)
		}()
	}
	wg.Wait()
}

func TestGetAfterCloseFails(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	p.Close()
	if _, err := p.Get(context.Background(), addr); err != ErrPoolClosed {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestCloseIdleKillsPooledConns(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Put(c1)
	p.CloseIdle(addr)
	if p.IdleCount(addr) != 0 {
		t.Fatal("idle connections not closed")
	}
	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("closed connection recycled")
	}
	_ = n
}

func TestDialErrorReleasesSlot(t *testing.T) {
	bad := DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, errors.New("boom")
	})
	p := New(bad, Options{MaxPerHost: 1})
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Get(context.Background(), "x:1"); err == nil {
			t.Fatal("expected dial error")
		}
	}
	// Slot must not leak: ActiveCount returns to zero.
	if p.ActiveCount("x:1") != 0 {
		t.Fatalf("active = %d after failed dials", p.ActiveCount("x:1"))
	}
}

func TestPerHostIsolation(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	for _, a := range []string{"a:1", "b:1"} {
		l, err := n.Listen(a)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(l net.Listener) {
			for {
				if _, err := l.Accept(); err != nil {
					return
				}
			}
		}(l)
	}
	p := New(n, Options{})
	defer p.Close()

	ca, _ := p.Get(context.Background(), "a:1")
	p.Put(ca)
	cb, err := p.Get(context.Background(), "b:1")
	if err != nil {
		t.Fatal(err)
	}
	if cb == ca {
		t.Fatal("connection recycled across hosts")
	}
	if p.IdleCount("a:1") != 1 || p.IdleCount("b:1") != 0 {
		t.Fatal("per-host idle accounting wrong")
	}
}
