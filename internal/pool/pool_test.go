package pool

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"godavix/internal/netsim"
)

func newFabric(t *testing.T) (*netsim.Network, string) {
	t.Helper()
	n := netsim.New(netsim.Ideal())
	addr := "host:80"
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			_ = c // server keeps connections open
		}
	}()
	return n, addr
}

func TestGetDialsThenRecycles(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	defer p.Close()

	c1, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Uses() != 1 {
		t.Fatalf("uses = %d", c1.Uses())
	}
	p.Put(c1)

	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("expected recycled connection")
	}
	if c2.Uses() != 2 {
		t.Fatalf("uses = %d", c2.Uses())
	}
	st := p.Stats()
	if st.Dials != 1 || st.Reuses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n.Dials() != 1 {
		t.Fatalf("network dials = %d", n.Dials())
	}
}

func TestDiscardForcesRedial(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Discard(c1)
	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("discarded connection must not be recycled")
	}
	if n.Dials() != 2 {
		t.Fatalf("network dials = %d", n.Dials())
	}
}

func TestMaxPerHostBlocksUntilRelease(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxPerHost: 1})
	defer p.Close()

	c1, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan *Conn)
	go func() {
		c, err := p.Get(context.Background(), addr)
		if err != nil {
			t.Error(err)
		}
		got <- c
	}()

	select {
	case <-got:
		t.Fatal("second Get should block at MaxPerHost=1")
	case <-time.After(30 * time.Millisecond):
	}

	p.Put(c1)
	select {
	case c2 := <-got:
		if c2 != c1 {
			t.Fatal("waiter should receive the recycled connection")
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke up")
	}
}

func TestMaxPerHostContextCancel(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxPerHost: 1})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	defer p.Put(c1)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Get(ctx, addr)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestIdleTTLExpiry(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{IdleTTL: 10 * time.Millisecond})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Put(c1)
	time.Sleep(25 * time.Millisecond)
	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("stale idle connection must not be recycled")
	}
	if p.Stats().Discards != 1 {
		t.Fatalf("discards = %d", p.Stats().Discards)
	}
}

func TestMaxUsesRetiresConnection(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxUses: 2})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Put(c1)
	c2, _ := p.Get(context.Background(), addr)
	if c2 != c1 {
		t.Fatal("second use should recycle")
	}
	p.Put(c2) // uses == MaxUses: retired
	c3, _ := p.Get(context.Background(), addr)
	if c3 == c1 {
		t.Fatal("connection past MaxUses must be retired")
	}
	_ = n
}

func TestMaxIdleOverflowCloses(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxIdlePerHost: 1})
	defer p.Close()

	ctx := context.Background()
	c1, _ := p.Get(ctx, addr)
	c2, _ := p.Get(ctx, addr)
	p.Put(c1)
	p.Put(c2) // overflow: closed
	if got := p.IdleCount(addr); got != 1 {
		t.Fatalf("idle = %d, want 1", got)
	}
	if p.Stats().Discards != 1 {
		t.Fatalf("discards = %d", p.Stats().Discards)
	}
	_ = n
}

// TestNeverExceedsMaxPerHost hammers the pool with concurrent borrowers and
// asserts the per-host cap invariant throughout.
func TestNeverExceedsMaxPerHost(t *testing.T) {
	n, addr := newFabric(t)
	const cap = 4
	p := New(n, Options{MaxPerHost: cap})
	defer p.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	inUse, peak := 0, 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Get(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			inUse++
			if inUse > peak {
				peak = inUse
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			inUse--
			mu.Unlock()
			p.Put(c)
		}()
	}
	wg.Wait()
	if peak > cap {
		t.Fatalf("peak concurrent borrowed = %d > cap %d", peak, cap)
	}
	if p.ActiveCount(addr) > cap {
		t.Fatalf("active = %d > cap", p.ActiveCount(addr))
	}
}

// TestNoDoubleBorrow: a recycled conn is never handed to two workers at
// once (DESIGN.md invariant).
func TestNoDoubleBorrow(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{MaxPerHost: 2})
	defer p.Close()

	var mu sync.Mutex
	held := make(map[*Conn]bool)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := p.Get(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if held[c] {
				t.Errorf("connection double-borrowed")
			}
			held[c] = true
			mu.Unlock()
			time.Sleep(500 * time.Microsecond)
			mu.Lock()
			held[c] = false
			mu.Unlock()
			p.Put(c)
		}()
	}
	wg.Wait()
}

func TestGetAfterCloseFails(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	p.Close()
	if _, err := p.Get(context.Background(), addr); err != ErrPoolClosed {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
}

func TestCloseIdleKillsPooledConns(t *testing.T) {
	n, addr := newFabric(t)
	p := New(n, Options{})
	defer p.Close()

	c1, _ := p.Get(context.Background(), addr)
	p.Put(c1)
	p.CloseIdle(addr)
	if p.IdleCount(addr) != 0 {
		t.Fatal("idle connections not closed")
	}
	c2, err := p.Get(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("closed connection recycled")
	}
	_ = n
}

func TestDialErrorReleasesSlot(t *testing.T) {
	bad := DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
		return nil, errors.New("boom")
	})
	p := New(bad, Options{MaxPerHost: 1})
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Get(context.Background(), "x:1"); err == nil {
			t.Fatal("expected dial error")
		}
	}
	// Slot must not leak: ActiveCount returns to zero.
	if p.ActiveCount("x:1") != 0 {
		t.Fatalf("active = %d after failed dials", p.ActiveCount("x:1"))
	}
}

func TestPerHostIsolation(t *testing.T) {
	n := netsim.New(netsim.Ideal())
	for _, a := range []string{"a:1", "b:1"} {
		l, err := n.Listen(a)
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func(l net.Listener) {
			for {
				if _, err := l.Accept(); err != nil {
					return
				}
			}
		}(l)
	}
	p := New(n, Options{})
	defer p.Close()

	ca, _ := p.Get(context.Background(), "a:1")
	p.Put(ca)
	cb, err := p.Get(context.Background(), "b:1")
	if err != nil {
		t.Fatal(err)
	}
	if cb == ca {
		t.Fatal("connection recycled across hosts")
	}
	if p.IdleCount("a:1") != 1 || p.IdleCount("b:1") != 0 {
		t.Fatal("per-host idle accounting wrong")
	}
}
