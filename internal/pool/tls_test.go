package pool

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"math/big"
	"net"
	"testing"
	"time"
)

// selfSigned builds an in-memory certificate for 127.0.0.1, good enough for
// a loopback handshake test.
func selfSigned(t *testing.T) tls.Certificate {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject:      pkix.Name{CommonName: "pool-test"},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		IPAddresses:  []net.IP{net.IPv4(127, 0, 0, 1)},
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}
}

// TestTLSSessionResumption proves that a reconnect through the pool resumes
// the TLS session the first dial established: the shared ClientSessionCache
// turns the second full handshake into a resumption.
func TestTLSSessionResumption(t *testing.T) {
	cert := selfSigned(t)
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{Certificates: []tls.Certificate{cert}})
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Server: greet each client with one byte. The write completes the
	// handshake and flushes the TLS 1.3 session tickets; the client's read
	// processes them into its session cache.
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				c.Write([]byte{'!'})
				time.Sleep(50 * time.Millisecond)
				c.Close()
			}(c)
		}
	}()

	d := DialerFunc(func(ctx context.Context, addr string) (net.Conn, error) {
		var nd net.Dialer
		return nd.DialContext(ctx, "tcp", addr)
	})
	p := New(d, Options{TLS: &tls.Config{InsecureSkipVerify: true}})
	defer p.Close()

	ctx := context.Background()
	addr := ln.Addr().String()

	greet := func() {
		c, err := p.Get(ctx, addr)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 1)
		if _, err := c.Reader().Read(buf); err != nil {
			t.Fatal(err)
		}
		p.Discard(c) // close it so the next Get handshakes again
	}

	greet()
	st := p.Stats()
	if st.TLSHandshakes != 1 || st.TLSResumes != 0 {
		t.Fatalf("first dial: handshakes=%d resumes=%d", st.TLSHandshakes, st.TLSResumes)
	}
	greet()
	st = p.Stats()
	if st.TLSHandshakes != 2 {
		t.Fatalf("second dial: handshakes=%d", st.TLSHandshakes)
	}
	if st.TLSResumes != 1 {
		t.Fatalf("second handshake did not resume the cached session: resumes=%d", st.TLSResumes)
	}
}
