package obs

import (
	"expvar"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"
)

// accessWriter captures the status code and payload byte count of one
// response for the access log, passing Flush through so streaming handlers
// (truncated-body fault injection, ServeContent) behave identically.
type accessWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *accessWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *accessWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing, so
// wrapping never hides the http.Flusher capability handlers probe for.
func (w *accessWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer so http.ResponseController keeps
// working through the access log (the gateway arms per-read body deadlines
// for slow-loris protection, which needs the real connection).
func (w *accessWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// AccessLog wraps next with a structured access log on l: one Info record
// per request carrying method, path, status, response bytes, duration and
// remote address. The record is emitted even when the handler panics with
// http.ErrAbortHandler (the connection-abort idiom fault injection uses) —
// the line then reports whatever had been written — and the panic is
// re-raised for net/http to handle.
func AccessLog(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aw := &accessWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			status := aw.status
			if status == 0 {
				status = http.StatusOK
			}
			l.Info("request",
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"bytes", aw.bytes,
				"duration", time.Since(start),
				"remote", r.RemoteAddr)
			if p := recover(); p != nil {
				panic(p)
			}
		}()
		next.ServeHTTP(aw, r)
	})
}

// DebugMux assembles the gateway's exposition surface on one handler:
//
//	/metrics        Prometheus text format of snap()
//	/debug/vars     the process expvar registry (JSON)
//	/debug/pprof/   the runtime profiler endpoints
//	/               app (when non-nil)
//
// The pprof handlers are mounted explicitly rather than through
// net/http/pprof's DefaultServeMux side effects, so the surface works on
// any server. snap is also published to expvar under namespace, making the
// same counters visible in /debug/vars.
func DebugMux(namespace string, snap func() Snapshot, app http.Handler) http.Handler {
	PublishExpvar(namespace, snap)
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(namespace, snap))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if app != nil {
		mux.Handle("/", app)
	}
	return mux
}
