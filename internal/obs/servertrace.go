package obs

import (
	"log/slog"
	"time"
)

// ServerTrace is the gateway-side sibling of ClientTrace: hooks the storage
// server fires as its admission controller and deadline machinery act. Any
// field may be nil; a nil *ServerTrace costs the server two pointer checks
// per event. Hooks run inline on the request path and may be called
// concurrently — they must be fast and goroutine-safe.
type ServerTrace struct {
	// Admitted fires when a request passes admission; queued reports
	// whether it waited in the bounded queue (wait is the time spent
	// there, zero for a direct grant).
	Admitted func(client string, queued bool, wait time.Duration)

	// Shed fires when the admission controller rejects a request with
	// 503: reason is one of "capacity" (global in-flight + queue full or
	// queue deadline hit), "client-concurrency" (per-client cap), or
	// "client-rate" (token bucket empty). retryAfter is the advertised
	// backoff.
	Shed func(client, reason string, retryAfter time.Duration)

	// SlowClient fires when a body read or write stalls past the
	// configured deadline and the connection is killed: reason is
	// "read-stall" (slow-loris upload) or "write-stall" (client not
	// draining a download).
	SlowClient func(client, reason string)

	// PartialReaped fires when the TTL janitor drops an abandoned
	// ranged-upload assembly; age is how long it sat idle.
	PartialReaped func(path string, age time.Duration)
}

// EmitAdmitted invokes Admitted if installed.
func (t *ServerTrace) EmitAdmitted(client string, queued bool, wait time.Duration) {
	if t == nil || t.Admitted == nil {
		return
	}
	t.Admitted(client, queued, wait)
}

// EmitShed invokes Shed if installed.
func (t *ServerTrace) EmitShed(client, reason string, retryAfter time.Duration) {
	if t == nil || t.Shed == nil {
		return
	}
	t.Shed(client, reason, retryAfter)
}

// EmitSlowClient invokes SlowClient if installed.
func (t *ServerTrace) EmitSlowClient(client, reason string) {
	if t == nil || t.SlowClient == nil {
		return
	}
	t.SlowClient(client, reason)
}

// EmitPartialReaped invokes PartialReaped if installed.
func (t *ServerTrace) EmitPartialReaped(path string, age time.Duration) {
	if t == nil || t.PartialReaped == nil {
		return
	}
	t.PartialReaped(path, age)
}

// MergeServer composes two server traces the way Merge composes client
// traces: each event fires a's hook then b's; a nil side is free.
func MergeServer(a, b *ServerTrace) *ServerTrace {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &ServerTrace{
		Admitted: func(client string, queued bool, wait time.Duration) {
			a.EmitAdmitted(client, queued, wait)
			b.EmitAdmitted(client, queued, wait)
		},
		Shed: func(client, reason string, retryAfter time.Duration) {
			a.EmitShed(client, reason, retryAfter)
			b.EmitShed(client, reason, retryAfter)
		},
		SlowClient: func(client, reason string) {
			a.EmitSlowClient(client, reason)
			b.EmitSlowClient(client, reason)
		},
		PartialReaped: func(path string, age time.Duration) {
			a.EmitPartialReaped(path, age)
			b.EmitPartialReaped(path, age)
		},
	}
}

// SlogServerTrace renders gateway events as structured log records on l:
// overload actions (shed, slow-client kill, reaped assembly) at Warn —
// they mean the server defended itself — and per-request admissions at
// Debug so an Info logger stays readable under load. Returns nil when l is
// nil ("no tracing").
func SlogServerTrace(l *slog.Logger) *ServerTrace {
	if l == nil {
		return nil
	}
	return &ServerTrace{
		Admitted: func(client string, queued bool, wait time.Duration) {
			l.Debug("gateway admitted", "client", client, "queued", queued, "wait", wait)
		},
		Shed: func(client, reason string, retryAfter time.Duration) {
			l.Warn("gateway shed", "client", client, "reason", reason,
				"retry_after", retryAfter)
		},
		SlowClient: func(client, reason string) {
			l.Warn("gateway slow client killed", "client", client, "reason", reason)
		},
		PartialReaped: func(path string, age time.Duration) {
			l.Warn("gateway partial upload reaped", "path", path, "age", age)
		},
	}
}
