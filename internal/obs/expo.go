package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is one monotonic counter (or point-in-time gauge) of a Snapshot.
type Counter struct {
	// Name is the metric name without namespace ("requests_total").
	Name string
	// Help is the one-line description emitted as Prometheus # HELP.
	Help string
	// Value is the current reading.
	Value int64
	// Gauge marks a point-in-time value (resident bytes, in-progress
	// uploads) rather than a monotonic counter.
	Gauge bool
}

// Quantile is one operation's latency summary inside a Snapshot.
type Quantile struct {
	// Op labels the operation ("GET", "PUT(range)", ...).
	Op string
	// Count is how many executions were recorded.
	Count int64
	// P50, P90 and P99 are the latency quantiles.
	P50, P90, P99 time.Duration
}

// Snapshot is the exposition-ready view of a component's metrics: a flat
// list of counters plus per-operation latency quantiles. Both the davix
// client (engine + cache + pool counters) and the storage-gateway server
// render themselves into this shape, so one set of publishers (expvar,
// Prometheus) serves both.
type Snapshot struct {
	Counters  []Counter  `json:"counters"`
	Quantiles []Quantile `json:"quantiles,omitempty"`
}

// sanitizeMetricName maps s onto the Prometheus metric-name alphabet
// [a-zA-Z0-9_]; every other rune becomes '_', and a leading digit is
// prefixed.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			ok = true
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// WritePrometheus renders s in the Prometheus text exposition format
// (version 0.0.4), every metric prefixed with namespace. Latency quantiles
// become a summary-style family <ns>_op_latency_seconds{op=...,quantile=...}
// with a matching _count.
func WritePrometheus(w io.Writer, namespace string, s Snapshot) error {
	ns := sanitizeMetricName(namespace)
	for _, c := range s.Counters {
		name := ns + "_" + sanitizeMetricName(c.Name)
		typ := "counter"
		if c.Gauge {
			typ = "gauge"
		}
		if c.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, c.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", name, typ, name, c.Value); err != nil {
			return err
		}
	}
	if len(s.Quantiles) > 0 {
		lat := ns + "_op_latency_seconds"
		if _, err := fmt.Fprintf(w, "# HELP %s Per-operation latency quantiles (histogram-bucket resolution).\n# TYPE %s summary\n", lat, lat); err != nil {
			return err
		}
		for _, q := range s.Quantiles {
			op := escapeLabelValue(q.Op)
			for _, v := range []struct {
				q string
				d time.Duration
			}{{"0.5", q.P50}, {"0.9", q.P90}, {"0.99", q.P99}} {
				if _, err := fmt.Fprintf(w, "%s{op=\"%s\",quantile=\"%s\"} %g\n", lat, op, v.q, v.d.Seconds()); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_count{op=\"%s\"} %d\n", lat, op, q.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// MetricsHandler serves fn's Snapshot in the Prometheus text format — the
// zero-dependency /metrics endpoint.
func MetricsHandler(namespace string, fn func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, namespace, fn())
	})
}

// published guards expvar re-publication: expvar.Publish panics on a
// duplicate name, so each name is registered once and later calls swap the
// snapshot function behind it instead.
var (
	publishMu sync.Mutex
	published = map[string]*atomic.Pointer[func() Snapshot]{}
)

// PublishExpvar exports fn's Snapshot under name in the process-wide expvar
// registry (served by /debug/vars), rendered as JSON on every read.
// Publishing an already-published name atomically replaces its snapshot
// source — safe for clients that are closed and rebuilt.
func PublishExpvar(name string, fn func() Snapshot) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if holder, ok := published[name]; ok {
		holder.Store(&fn)
		return
	}
	holder := &atomic.Pointer[func() Snapshot]{}
	holder.Store(&fn)
	published[name] = holder
	expvar.Publish(name, expvar.Func(func() any {
		return (*holder.Load())()
	}))
}
