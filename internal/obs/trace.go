// Package obs is the observability plane of the davix engine: an
// httptrace-style hook struct (ClientTrace) the engine fires at every
// interesting event, a log/slog adapter rendering those hooks as structured
// log events, and a zero-dependency exposition layer (expvar publication,
// Prometheus text format, pprof/vars debug endpoints, HTTP access logging)
// for the client and the storage-gateway server.
//
// The package deliberately depends on the standard library only, and the
// engine side is nil-safe end to end: with no trace installed every emit
// site is two pointer checks, so the disabled case stays off the hot path.
package obs

import "time"

// Direction labels which way a transfer chunk moves.
type Direction string

// Chunk directions.
const (
	// Down is a download chunk (server to client).
	Down Direction = "down"
	// Up is an upload chunk (client to server).
	Up Direction = "up"
)

// BytePath labels which copy machinery moved a transfer's payload bytes.
type BytePath string

// Byte paths.
const (
	// PathKernel means the bytes moved kernel-side (sendfile/splice/
	// copy_file_range) and never entered a userspace buffer.
	PathKernel BytePath = "kernel"
	// PathPooled means the bytes crossed userspace through pooled copy
	// buffers (the fallback when an endpoint, TLS, or inline verification
	// needs to observe the stream).
	PathPooled BytePath = "pooled"
)

// ClientTrace is a set of hooks the engine invokes as an operation
// progresses, in the style of net/http/httptrace.ClientTrace. Any field may
// be nil; a nil function (or a nil *ClientTrace) costs the engine nothing
// beyond the check. Hooks may be called concurrently from multiple
// goroutines (multi-stream transfers run chunks in parallel) and must be
// safe for concurrent use; they run inline on the hot path, so they should
// return quickly and never block.
type ClientTrace struct {
	// OpStart fires when an engine operation (one exec: GET, PUT(range),
	// PROPFIND, ...) begins, before any network traffic.
	OpStart func(op, host, path string)

	// OpDone fires when the operation finishes, with its caller-observed
	// duration (retries, redirects and failover included) and final error.
	OpDone func(op, host, path string, d time.Duration, err error)

	// Request fires for every HTTP request written to a connection:
	// redirect hops, retry attempts and failover attempts each count.
	Request func(method, host, path string)

	// ConnAcquired fires when a pooled connection is borrowed for a
	// request; reused reports a recycled keep-alive session (a pool hit)
	// versus a fresh dial.
	ConnAcquired func(host string, reused bool)

	// Redirect fires when the engine follows a 3xx hop away from fromHost.
	Redirect func(op, fromHost, location string)

	// Retry fires before a retry of op against host: transparent
	// stale-recycled-connection replays (attempt 1) and RetryPolicy backoff
	// retries, with the error that caused the retry.
	Retry func(op, host string, attempt int, err error)

	// Failover fires when the engine abandons fromHost and tries the next
	// Metalink replica on toHost; err is the failure being failed over
	// (nil when the primary was breaker-skipped up front).
	Failover func(fromHost, toHost string, err error)

	// BreakerTrip fires when the per-host health scoreboard demotes host
	// (consecutive-failure threshold reached, cooldown starts).
	BreakerTrip func(host string)

	// CacheHit fires when the block cache serves blocks of key from
	// memory; blocks counts cache pages, not bytes.
	CacheHit func(key string, blocks int64)

	// CacheMiss fires when a demand read needs blocks of key that are not
	// resident.
	CacheMiss func(key string, blocks int64)

	// ChunkStart fires when one chunk of a multi-stream transfer (upload,
	// download, or pull-mode copy) is about to move [off, off+length) of
	// path.
	ChunkStart func(dir Direction, path string, idx int, off, length int64)

	// ChunkDone fires when that chunk finished (err nil) or failed. The
	// lengths of the successful ChunkDone events of one transfer sum to
	// exactly the object size.
	ChunkDone func(dir Direction, path string, idx int, off, length int64, err error)

	// TransferPath fires when a transfer span of path has moved, reporting
	// which byte path carried it: kernel (sendfile/splice, zero userspace
	// copies) or pooled (userspace copy buffers). One transfer may emit
	// both — e.g. a kernel-ineligible chunk falling back while its siblings
	// splice.
	TransferPath func(dir Direction, path string, bp BytePath, bytes int64)

	// HedgeIssued fires when a chunk read outlives its latency budget and
	// the engine launches a duplicate request for [off, off+length) of path
	// against standby host toHost, racing the straggler.
	HedgeIssued func(path string, idx int, off, length int64, toHost string)

	// HedgeSettled fires when a hedged chunk race resolves. hedgeWon
	// reports whether the standby beat the original request; wasted counts
	// payload bytes the losing side had already delivered when it was
	// cancelled (the duplicate-traffic cost of the hedge).
	HedgeSettled func(path string, idx int, hedgeWon bool, wasted int64)

	// PrefetchIssued fires when the learned read-ahead puts a speculative
	// fetch on the wire for path: spans is how many ranges the coalesced
	// request carries, bytes their total volume.
	PrefetchIssued func(path string, spans int, bytes int64)

	// PrefetchSettled fires when a speculative fetch completes, with the
	// bytes it had requested and its error (nil on success).
	PrefetchSettled func(path string, bytes int64, err error)

	// Resume fires once per transfer that picked up a checkpoint journal,
	// after the journaled chunks were re-verified against their recorded
	// digests: resumed counts bytes proven intact and skipped, verified the
	// journal records accepted, and failed the records whose digest no
	// longer matched (those chunks are re-fetched).
	Resume func(dir Direction, path string, resumed int64, verified, failed int)
}

// The emit methods below are the engine-facing surface: all are safe on a
// nil receiver and skip nil hooks, so call sites never need a check.

// EmitOpStart invokes OpStart if installed.
func (t *ClientTrace) EmitOpStart(op, host, path string) {
	if t == nil || t.OpStart == nil {
		return
	}
	t.OpStart(op, host, path)
}

// EmitOpDone invokes OpDone if installed.
func (t *ClientTrace) EmitOpDone(op, host, path string, d time.Duration, err error) {
	if t == nil || t.OpDone == nil {
		return
	}
	t.OpDone(op, host, path, d, err)
}

// EmitRequest invokes Request if installed.
func (t *ClientTrace) EmitRequest(method, host, path string) {
	if t == nil || t.Request == nil {
		return
	}
	t.Request(method, host, path)
}

// EmitConnAcquired invokes ConnAcquired if installed.
func (t *ClientTrace) EmitConnAcquired(host string, reused bool) {
	if t == nil || t.ConnAcquired == nil {
		return
	}
	t.ConnAcquired(host, reused)
}

// EmitRedirect invokes Redirect if installed.
func (t *ClientTrace) EmitRedirect(op, fromHost, location string) {
	if t == nil || t.Redirect == nil {
		return
	}
	t.Redirect(op, fromHost, location)
}

// EmitRetry invokes Retry if installed.
func (t *ClientTrace) EmitRetry(op, host string, attempt int, err error) {
	if t == nil || t.Retry == nil {
		return
	}
	t.Retry(op, host, attempt, err)
}

// EmitFailover invokes Failover if installed.
func (t *ClientTrace) EmitFailover(fromHost, toHost string, err error) {
	if t == nil || t.Failover == nil {
		return
	}
	t.Failover(fromHost, toHost, err)
}

// EmitBreakerTrip invokes BreakerTrip if installed.
func (t *ClientTrace) EmitBreakerTrip(host string) {
	if t == nil || t.BreakerTrip == nil {
		return
	}
	t.BreakerTrip(host)
}

// EmitCacheHit invokes CacheHit if installed.
func (t *ClientTrace) EmitCacheHit(key string, blocks int64) {
	if t == nil || t.CacheHit == nil {
		return
	}
	t.CacheHit(key, blocks)
}

// EmitCacheMiss invokes CacheMiss if installed.
func (t *ClientTrace) EmitCacheMiss(key string, blocks int64) {
	if t == nil || t.CacheMiss == nil {
		return
	}
	t.CacheMiss(key, blocks)
}

// EmitChunkStart invokes ChunkStart if installed.
func (t *ClientTrace) EmitChunkStart(dir Direction, path string, idx int, off, length int64) {
	if t == nil || t.ChunkStart == nil {
		return
	}
	t.ChunkStart(dir, path, idx, off, length)
}

// EmitChunkDone invokes ChunkDone if installed.
func (t *ClientTrace) EmitChunkDone(dir Direction, path string, idx int, off, length int64, err error) {
	if t == nil || t.ChunkDone == nil {
		return
	}
	t.ChunkDone(dir, path, idx, off, length, err)
}

// EmitTransferPath invokes TransferPath if installed.
func (t *ClientTrace) EmitTransferPath(dir Direction, path string, bp BytePath, bytes int64) {
	if t == nil || t.TransferPath == nil {
		return
	}
	t.TransferPath(dir, path, bp, bytes)
}

// EmitHedgeIssued invokes HedgeIssued if installed.
func (t *ClientTrace) EmitHedgeIssued(path string, idx int, off, length int64, toHost string) {
	if t == nil || t.HedgeIssued == nil {
		return
	}
	t.HedgeIssued(path, idx, off, length, toHost)
}

// EmitHedgeSettled invokes HedgeSettled if installed.
func (t *ClientTrace) EmitHedgeSettled(path string, idx int, hedgeWon bool, wasted int64) {
	if t == nil || t.HedgeSettled == nil {
		return
	}
	t.HedgeSettled(path, idx, hedgeWon, wasted)
}

// EmitPrefetchIssued invokes PrefetchIssued if installed.
func (t *ClientTrace) EmitPrefetchIssued(path string, spans int, bytes int64) {
	if t == nil || t.PrefetchIssued == nil {
		return
	}
	t.PrefetchIssued(path, spans, bytes)
}

// EmitPrefetchSettled invokes PrefetchSettled if installed.
func (t *ClientTrace) EmitPrefetchSettled(path string, bytes int64, err error) {
	if t == nil || t.PrefetchSettled == nil {
		return
	}
	t.PrefetchSettled(path, bytes, err)
}

// EmitResume invokes Resume if installed.
func (t *ClientTrace) EmitResume(dir Direction, path string, resumed int64, verified, failed int) {
	if t == nil || t.Resume == nil {
		return
	}
	t.Resume(dir, path, resumed, verified, failed)
}

// Merge composes two traces: every event fires a's hook, then b's. A nil
// argument contributes nothing; merging with one nil returns the other
// unchanged (no wrapper cost).
func Merge(a, b *ClientTrace) *ClientTrace {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &ClientTrace{
		OpStart: func(op, host, path string) {
			a.EmitOpStart(op, host, path)
			b.EmitOpStart(op, host, path)
		},
		OpDone: func(op, host, path string, d time.Duration, err error) {
			a.EmitOpDone(op, host, path, d, err)
			b.EmitOpDone(op, host, path, d, err)
		},
		Request: func(method, host, path string) {
			a.EmitRequest(method, host, path)
			b.EmitRequest(method, host, path)
		},
		ConnAcquired: func(host string, reused bool) {
			a.EmitConnAcquired(host, reused)
			b.EmitConnAcquired(host, reused)
		},
		Redirect: func(op, fromHost, location string) {
			a.EmitRedirect(op, fromHost, location)
			b.EmitRedirect(op, fromHost, location)
		},
		Retry: func(op, host string, attempt int, err error) {
			a.EmitRetry(op, host, attempt, err)
			b.EmitRetry(op, host, attempt, err)
		},
		Failover: func(fromHost, toHost string, err error) {
			a.EmitFailover(fromHost, toHost, err)
			b.EmitFailover(fromHost, toHost, err)
		},
		BreakerTrip: func(host string) {
			a.EmitBreakerTrip(host)
			b.EmitBreakerTrip(host)
		},
		CacheHit: func(key string, blocks int64) {
			a.EmitCacheHit(key, blocks)
			b.EmitCacheHit(key, blocks)
		},
		CacheMiss: func(key string, blocks int64) {
			a.EmitCacheMiss(key, blocks)
			b.EmitCacheMiss(key, blocks)
		},
		ChunkStart: func(dir Direction, path string, idx int, off, length int64) {
			a.EmitChunkStart(dir, path, idx, off, length)
			b.EmitChunkStart(dir, path, idx, off, length)
		},
		ChunkDone: func(dir Direction, path string, idx int, off, length int64, err error) {
			a.EmitChunkDone(dir, path, idx, off, length, err)
			b.EmitChunkDone(dir, path, idx, off, length, err)
		},
		TransferPath: func(dir Direction, path string, bp BytePath, bytes int64) {
			a.EmitTransferPath(dir, path, bp, bytes)
			b.EmitTransferPath(dir, path, bp, bytes)
		},
		HedgeIssued: func(path string, idx int, off, length int64, toHost string) {
			a.EmitHedgeIssued(path, idx, off, length, toHost)
			b.EmitHedgeIssued(path, idx, off, length, toHost)
		},
		HedgeSettled: func(path string, idx int, hedgeWon bool, wasted int64) {
			a.EmitHedgeSettled(path, idx, hedgeWon, wasted)
			b.EmitHedgeSettled(path, idx, hedgeWon, wasted)
		},
		PrefetchIssued: func(path string, spans int, bytes int64) {
			a.EmitPrefetchIssued(path, spans, bytes)
			b.EmitPrefetchIssued(path, spans, bytes)
		},
		PrefetchSettled: func(path string, bytes int64, err error) {
			a.EmitPrefetchSettled(path, bytes, err)
			b.EmitPrefetchSettled(path, bytes, err)
		},
		Resume: func(dir Direction, path string, resumed int64, verified, failed int) {
			a.EmitResume(dir, path, resumed, verified, failed)
			b.EmitResume(dir, path, resumed, verified, failed)
		},
	}
}
