package obs

import (
	"log/slog"
	"time"
)

// SlogTrace renders every trace event as a structured log record on l:
// resilience events (retry, failover, breaker trip) at Warn — they mean
// something went wrong and the engine absorbed it — completed operations at
// Info, and the high-rate per-request, cache and chunk events at Debug so a
// default Info logger stays readable under a multi-stream transfer. Returns
// nil when l is nil, which the engine treats as "no tracing".
func SlogTrace(l *slog.Logger) *ClientTrace {
	if l == nil {
		return nil
	}
	return &ClientTrace{
		OpStart: func(op, host, path string) {
			l.Debug("davix op start", "op", op, "host", host, "path", path)
		},
		OpDone: func(op, host, path string, d time.Duration, err error) {
			if err != nil {
				l.Warn("davix op failed", "op", op, "host", host, "path", path,
					"duration", d, "err", err)
				return
			}
			l.Info("davix op", "op", op, "host", host, "path", path, "duration", d)
		},
		Request: func(method, host, path string) {
			l.Debug("davix request", "method", method, "host", host, "path", path)
		},
		ConnAcquired: func(host string, reused bool) {
			l.Debug("davix conn acquired", "host", host, "reused", reused)
		},
		Redirect: func(op, fromHost, location string) {
			l.Debug("davix redirect", "op", op, "from", fromHost, "location", location)
		},
		Retry: func(op, host string, attempt int, err error) {
			l.Warn("davix retry", "op", op, "host", host, "attempt", attempt, "err", err)
		},
		Failover: func(fromHost, toHost string, err error) {
			l.Warn("davix failover", "from", fromHost, "to", toHost, "err", err)
		},
		BreakerTrip: func(host string) {
			l.Warn("davix breaker trip", "host", host)
		},
		CacheHit: func(key string, blocks int64) {
			l.Debug("davix cache hit", "key", key, "blocks", blocks)
		},
		CacheMiss: func(key string, blocks int64) {
			l.Debug("davix cache miss", "key", key, "blocks", blocks)
		},
		ChunkStart: func(dir Direction, path string, idx int, off, length int64) {
			l.Debug("davix chunk start", "dir", string(dir), "path", path,
				"idx", idx, "off", off, "len", length)
		},
		ChunkDone: func(dir Direction, path string, idx int, off, length int64, err error) {
			if err != nil {
				l.Warn("davix chunk failed", "dir", string(dir), "path", path,
					"idx", idx, "off", off, "len", length, "err", err)
				return
			}
			l.Debug("davix chunk done", "dir", string(dir), "path", path,
				"idx", idx, "off", off, "len", length)
		},
		TransferPath: func(dir Direction, path string, bp BytePath, bytes int64) {
			l.Debug("davix byte path", "dir", string(dir), "path", path,
				"via", string(bp), "bytes", bytes)
		},
		HedgeIssued: func(path string, idx int, off, length int64, toHost string) {
			l.Warn("davix hedge issued", "path", path, "idx", idx,
				"off", off, "len", length, "to", toHost)
		},
		HedgeSettled: func(path string, idx int, hedgeWon bool, wasted int64) {
			l.Debug("davix hedge settled", "path", path, "idx", idx,
				"hedge_won", hedgeWon, "wasted", wasted)
		},
		PrefetchIssued: func(path string, spans int, bytes int64) {
			l.Debug("davix prefetch issued", "path", path, "spans", spans, "bytes", bytes)
		},
		PrefetchSettled: func(path string, bytes int64, err error) {
			if err != nil {
				l.Warn("davix prefetch failed", "path", path, "bytes", bytes, "err", err)
				return
			}
			l.Debug("davix prefetch settled", "path", path, "bytes", bytes)
		},
		Resume: func(dir Direction, path string, resumed int64, verified, failed int) {
			l.Info("davix resume", "dir", string(dir), "path", path,
				"resumed_bytes", resumed, "verified_chunks", verified,
				"failed_chunks", failed)
		},
	}
}
