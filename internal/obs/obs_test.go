package obs

import (
	"context"
	"errors"
	"expvar"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEmitNilSafety: every emit method must be a no-op on a nil trace and
// on a trace with nil hooks — the engine calls them unconditionally.
func TestEmitNilSafety(t *testing.T) {
	for _, tr := range []*ClientTrace{nil, {}} {
		tr.EmitOpStart("GET", "h", "/p")
		tr.EmitOpDone("GET", "h", "/p", time.Millisecond, nil)
		tr.EmitRequest("GET", "h", "/p")
		tr.EmitConnAcquired("h", true)
		tr.EmitRedirect("GET", "h", "http://d/p")
		tr.EmitRetry("GET", "h", 1, errors.New("x"))
		tr.EmitFailover("h", "h2", nil)
		tr.EmitBreakerTrip("h")
		tr.EmitCacheHit("k", 1)
		tr.EmitCacheMiss("k", 2)
		tr.EmitChunkStart(Down, "/p", 0, 0, 10)
		tr.EmitChunkDone(Up, "/p", 0, 0, 10, nil)
	}
}

// TestMerge: a merged trace fires both hooks in order, and merging with nil
// returns the other trace unchanged.
func TestMerge(t *testing.T) {
	var order []string
	a := &ClientTrace{Request: func(m, h, p string) { order = append(order, "a:"+m) }}
	b := &ClientTrace{
		Request:     func(m, h, p string) { order = append(order, "b:"+m) },
		BreakerTrip: func(h string) { order = append(order, "b:trip:"+h) },
	}
	m := Merge(a, b)
	m.EmitRequest("GET", "h", "/p")
	m.EmitBreakerTrip("h1") // only b has the hook; a's nil must be skipped
	want := []string{"a:GET", "b:GET", "b:trip:h1"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if got := Merge(nil, a); got != a {
		t.Fatalf("Merge(nil, a) = %p, want a", got)
	}
	if got := Merge(a, nil); got != a {
		t.Fatalf("Merge(a, nil) = %p, want a", got)
	}
}

// recordingHandler captures slog records for assertions.
type recordingHandler struct {
	mu   sync.Mutex
	recs []slog.Record
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.recs = append(h.recs, r.Clone())
	return nil
}
func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

func (h *recordingHandler) find(msg string) (slog.Record, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, r := range h.recs {
		if r.Message == msg {
			return r, true
		}
	}
	return slog.Record{}, false
}

// attrs flattens a record's attributes into a map.
func attrs(r slog.Record) map[string]slog.Value {
	m := map[string]slog.Value{}
	r.Attrs(func(a slog.Attr) bool {
		m[a.Key] = a.Value
		return true
	})
	return m
}

// TestSlogTrace: events land at the documented levels with their fields.
func TestSlogTrace(t *testing.T) {
	h := &recordingHandler{}
	tr := SlogTrace(slog.New(h))

	tr.EmitOpDone("GET", "dpm1:80", "/f", 3*time.Millisecond, nil)
	tr.EmitRetry("GET", "dpm1:80", 2, errors.New("boom"))
	tr.EmitFailover("dpm1:80", "dpm2:80", errors.New("down"))
	tr.EmitBreakerTrip("dpm1:80")
	tr.EmitChunkDone(Down, "/f", 3, 1024, 512, nil)

	r, ok := h.find("davix op")
	if !ok {
		t.Fatal("no op-done record")
	}
	if r.Level != slog.LevelInfo {
		t.Fatalf("op done level = %v, want Info", r.Level)
	}
	if got := attrs(r)["op"].String(); got != "GET" {
		t.Fatalf("op = %q, want GET", got)
	}
	for _, msg := range []string{"davix retry", "davix failover", "davix breaker trip"} {
		r, ok := h.find(msg)
		if !ok {
			t.Fatalf("no %q record", msg)
		}
		if r.Level != slog.LevelWarn {
			t.Fatalf("%q level = %v, want Warn", msg, r.Level)
		}
	}
	r, ok = h.find("davix chunk done")
	if !ok {
		t.Fatal("no chunk-done record")
	}
	if r.Level != slog.LevelDebug {
		t.Fatalf("chunk done level = %v, want Debug", r.Level)
	}
	if got := attrs(r)["len"].Int64(); got != 512 {
		t.Fatalf("chunk len = %d, want 512", got)
	}
	if SlogTrace(nil) != nil {
		t.Fatal("SlogTrace(nil) must be nil")
	}
}

func sampleSnapshot() Snapshot {
	return Snapshot{
		Counters: []Counter{
			{Name: "requests_total", Help: "Total HTTP requests.", Value: 42},
			{Name: "bytes cached", Help: "Resident bytes.", Value: 7, Gauge: true},
		},
		Quantiles: []Quantile{
			{Op: `GET("range")`, Count: 10, P50: time.Millisecond, P90: 2 * time.Millisecond, P99: 4 * time.Millisecond},
		},
	}
}

// TestWritePrometheus: text-format rendering, name sanitization, label
// escaping.
func TestWritePrometheus(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, "davix-client", sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP davix_client_requests_total Total HTTP requests.",
		"# TYPE davix_client_requests_total counter",
		"davix_client_requests_total 42",
		"# TYPE davix_client_bytes_cached gauge",
		"davix_client_bytes_cached 7",
		"# TYPE davix_client_op_latency_seconds summary",
		`davix_client_op_latency_seconds{op="GET(\"range\")",quantile="0.5"} 0.001`,
		`davix_client_op_latency_seconds_count{op="GET(\"range\")"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsHandler: the /metrics endpoint speaks Prometheus text format.
func TestMetricsHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler("ns", sampleSnapshot).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ns_requests_total 42") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestPublishExpvar: the snapshot appears in the expvar registry, and
// re-publishing the same name swaps the source instead of panicking.
func TestPublishExpvar(t *testing.T) {
	PublishExpvar("obs_test_client", sampleSnapshot)
	v := expvar.Get("obs_test_client")
	if v == nil {
		t.Fatal("expvar not published")
	}
	if !strings.Contains(v.String(), `"requests_total"`) {
		t.Fatalf("expvar JSON missing counter: %s", v.String())
	}
	PublishExpvar("obs_test_client", func() Snapshot {
		return Snapshot{Counters: []Counter{{Name: "swapped", Value: 1}}}
	})
	if !strings.Contains(expvar.Get("obs_test_client").String(), `"swapped"`) {
		t.Fatalf("expvar not swapped: %s", expvar.Get("obs_test_client").String())
	}
}

// TestAccessLog: one Info record per request with the documented fields.
func TestAccessLog(t *testing.T) {
	h := &recordingHandler{}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("hello"))
	})
	srv := httptest.NewServer(AccessLog(slog.New(h), inner))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/some/path")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	r, ok := h.find("request")
	if !ok {
		t.Fatal("no access-log record")
	}
	a := attrs(r)
	if got := a["method"].String(); got != "GET" {
		t.Fatalf("method = %q", got)
	}
	if got := a["path"].String(); got != "/some/path" {
		t.Fatalf("path = %q", got)
	}
	if got := a["status"].Int64(); got != 201 {
		t.Fatalf("status = %d", got)
	}
	if got := a["bytes"].Int64(); got != 5 {
		t.Fatalf("bytes = %d", got)
	}
	if a["duration"].Duration() < 0 {
		t.Fatal("negative duration")
	}
	if a["remote"].String() == "" {
		t.Fatal("empty remote")
	}
}

// TestAccessLogAbort: a handler that panics with http.ErrAbortHandler (the
// fault-injection idiom) still produces an access-log line, and the panic
// propagates for net/http to kill the connection.
func TestAccessLogAbort(t *testing.T) {
	h := &recordingHandler{}
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("part"))
		if f, ok := w.(http.Flusher); !ok {
			t.Error("wrapper hides http.Flusher")
		} else {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	})
	wrapped := AccessLog(slog.New(h), inner)
	rec := httptest.NewRecorder()
	func() {
		defer func() {
			if p := recover(); p != http.ErrAbortHandler {
				t.Fatalf("recovered %v, want ErrAbortHandler", p)
			}
		}()
		wrapped.ServeHTTP(rec, httptest.NewRequest("GET", "/f", nil))
	}()
	r, ok := h.find("request")
	if !ok {
		t.Fatal("aborted request not logged")
	}
	a := attrs(r)
	if got := a["bytes"].Int64(); got != 4 {
		t.Fatalf("bytes = %d, want 4", got)
	}
}

// TestDebugMux: the whole exposition surface answers, and unmatched paths
// fall through to the app handler.
func TestDebugMux(t *testing.T) {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("app:" + r.URL.Path))
	})
	mux := DebugMux("obs_test_mux", sampleSnapshot, app)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(p string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "obs_test_mux_requests_total 42") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "obs_test_mux") {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, body := get("/store/f"); code != 200 || body != "app:/store/f" {
		t.Fatalf("app fallthrough: %d %q", code, body)
	}
}
