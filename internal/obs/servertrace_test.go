package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestServerTraceNilSafe(t *testing.T) {
	var tr *ServerTrace
	tr.EmitAdmitted("c", true, time.Millisecond)
	tr.EmitShed("c", "capacity", time.Second)
	tr.EmitSlowClient("c", "read-stall")
	tr.EmitPartialReaped("/p", time.Minute)

	partial := &ServerTrace{}
	partial.EmitAdmitted("c", false, 0)
	partial.EmitShed("c", "capacity", 0)
}

func TestMergeServer(t *testing.T) {
	if got := MergeServer(nil, nil); got != nil {
		t.Fatal("MergeServer(nil, nil) != nil")
	}
	a := &ServerTrace{}
	if got := MergeServer(a, nil); got != a {
		t.Fatal("MergeServer(a, nil) != a")
	}
	if got := MergeServer(nil, a); got != a {
		t.Fatal("MergeServer(nil, a) != a")
	}

	var order []string
	first := &ServerTrace{
		Shed: func(client, reason string, ra time.Duration) {
			order = append(order, "first:"+reason)
		},
	}
	second := &ServerTrace{
		Shed: func(client, reason string, ra time.Duration) {
			order = append(order, "second:"+reason)
		},
		Admitted: func(client string, queued bool, wait time.Duration) {
			order = append(order, "second:admitted")
		},
	}
	m := MergeServer(first, second)
	m.EmitShed("c", "capacity", time.Second)
	m.EmitAdmitted("c", false, 0)
	want := []string{"first:capacity", "second:capacity", "second:admitted"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSlogServerTrace(t *testing.T) {
	if SlogServerTrace(nil) != nil {
		t.Fatal("SlogServerTrace(nil) != nil")
	}
	var buf bytes.Buffer
	tr := SlogServerTrace(slog.New(slog.NewTextHandler(&buf, nil)))
	tr.EmitShed("client-1", "capacity", 2*time.Second)
	tr.EmitSlowClient("client-2", "read-stall")
	tr.EmitPartialReaped("/store/f", time.Minute)
	out := buf.String()
	for _, want := range []string{"gateway shed", "capacity", "client-1",
		"gateway slow client killed", "read-stall",
		"gateway partial upload reaped", "/store/f"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}
